#include "core/api.h"

#include "common/check.h"

namespace dcp {

void DcpExecutor::Prepare(const PlanHandle& handle) {
  DCP_CHECK(handle != nullptr) << "Prepare called with a null plan handle";
  ++prepare_count_;
  const bool same_signature = exec_ != nullptr && installed_ != nullptr &&
                              !handle->signature.IsZero() &&
                              installed_->signature == handle->signature;
  if (same_signature) {
    // Identical signature => bit-identical plan and buffer geometry: rebind in place,
    // keeping the allocated device buffers.
    exec_->Rebind(&handle->plan, &handle->masks);
    ++buffer_reuse_count_;
  } else {
    exec_ = std::make_unique<NumericExecutor>(&handle->plan, &handle->masks);
  }
  installed_ = handle;
}

void DcpExecutor::Prepare(const BatchPlan& plan, std::vector<SequenceMask> masks) {
  // Legacy path: no signature, so the handle never matches and buffers are rebuilt —
  // exactly the paper-facade behavior.
  auto compiled = std::make_shared<CompiledPlan>();
  compiled->plan = plan;
  compiled->masks = std::move(masks);
  Prepare(PlanHandle(std::move(compiled)));
}

const BatchPlan& DcpExecutor::plan() const {
  DCP_CHECK(exec_ != nullptr) << "DcpExecutor::Prepare not called";
  return installed_->plan;
}

NumericExecutor& DcpExecutor::numeric() {
  DCP_CHECK(exec_ != nullptr) << "DcpExecutor::Prepare not called";
  return *exec_;
}

std::vector<Tensor> DcpAttention::Forward(DcpExecutor& executor,
                                          const std::vector<SeqTensors>& inputs) {
  NumericExecutor& exec = executor.numeric();
  exec.LoadInputs(inputs);
  exec.RunForward();
  return exec.GatherOutputs();
}

std::vector<SeqGrads> DcpAttention::Backward(DcpExecutor& executor,
                                             const std::vector<Tensor>& douts) {
  NumericExecutor& exec = executor.numeric();
  exec.LoadOutputGrads(douts);
  exec.RunBackward();
  return exec.GatherInputGrads();
}

}  // namespace dcp
