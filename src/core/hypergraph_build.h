// Lowers a BlockGraph into the paper's placement hypergraph (§4.2):
//  - one vertex per token chunk, weight [0, chunk bytes] — the placement unit;
//  - one vertex per computation block, weight [flops, 0];
//  - one hyperedge per data block, weight = its byte size, connecting the owning chunk
//    vertex with every computation block that consumes (Q, KV) or produces (O) it.
// Q and O blocks of a (chunk, group) have identical pin sets (the tiles of that q chunk),
// so they are emitted as a single hyperedge with the summed weight; the connectivity
// objective then counts both the Q fetch and the O return per remote device, exactly like
// the paper's volume formula.
#ifndef DCP_CORE_HYPERGRAPH_BUILD_H_
#define DCP_CORE_HYPERGRAPH_BUILD_H_

#include "core/block_gen.h"
#include "hypergraph/hypergraph.h"

namespace dcp {

struct BuiltHypergraph {
  Hypergraph hg;
  // Vertex ids: [0, num_chunks) are token chunks (id == global chunk id);
  // [num_chunks, num_chunks + num_comp_blocks) are computation blocks in BlockGraph order.
  int num_chunk_vertices = 0;

  VertexId ChunkVertex(int global_chunk) const { return global_chunk; }
  VertexId CompVertex(int comp_index) const { return num_chunk_vertices + comp_index; }
  bool IsChunkVertex(VertexId v) const { return v < num_chunk_vertices; }
};

BuiltHypergraph BuildPlacementHypergraph(const BlockGraph& graph);

}  // namespace dcp

#endif  // DCP_CORE_HYPERGRAPH_BUILD_H_
