// The DCP planner (paper §3, "Planner" box): block generation -> hypergraph placement ->
// division scheduling -> plan compilation, with planning time measured for the Fig. 18
// experiment.
#ifndef DCP_CORE_PLANNER_H_
#define DCP_CORE_PLANNER_H_

#include <vector>

#include "core/placement.h"
#include "masks/mask.h"
#include "runtime/cluster.h"
#include "runtime/instructions.h"

namespace dcp {

struct PlannerOptions {
  // Block partitioning (paper §7.1 searches {512, 1024, 2048, 4096}).
  int64_t block_size = 1024;
  // Attention operator spec (paper: GQA, 8 query heads, 2 KV groups, head dim 128).
  int num_groups = 2;
  int heads_per_group = 4;
  int head_dim = 128;
  int bytes_per_element = 2;
  // Scheduling (paper fixes 4 divisions).
  int divisions = 4;
  // Placement tolerances (paper: inter-node 0.4, intra-node 0.1).
  double eps_inter = 0.4;
  double eps_intra = 0.1;
  double eps_data = 0.15;
  bool hierarchical = true;
  bool use_multilevel = true;
  uint64_t seed = 1;
  // Partitioner knobs surfaced for large-k clusters (k = total devices). Defaults match
  // the paper-scale configuration; large-k deployments typically trade portfolio width
  // (vcycles, initial_tries) for replanning latency. Non-positive values keep the
  // PartitionConfig default.
  int partition_vcycles = 0;
  int partition_vcycle_iterations = -1;  // -1: default; 0 disables iterated V-cycles.
  int partition_refinement_passes = 0;
  int partition_initial_tries = 0;
  int partition_coarsen_until_per_part = 0;
  int partition_coarsening_grain = 0;

  BatchLayout MakeLayout(const std::vector<int64_t>& seqlens) const;
};

// Plans one batch: returns per-device forward+backward instruction streams plus stats.
// The returned plan is structurally validated (see runtime/plan_validate.h).
BatchPlan PlanBatch(const std::vector<int64_t>& seqlens,
                    const std::vector<SequenceMask>& masks, const ClusterSpec& cluster,
                    const PlannerOptions& options);

// Block-size search (paper §7.1: "we search through block sizes 512, 1024, 2048, 4096 and
// report the best performance"): plans the batch at each candidate block size, prices
// forward+backward on the simulator, and returns the fastest plan.
struct BlockSizeSearchResult {
  int64_t best_block_size = 0;
  double best_fwbw_seconds = 0.0;
  BatchPlan best_plan;
  std::vector<std::pair<int64_t, double>> candidates;  // (block size, simulated seconds).
};

BlockSizeSearchResult SearchBlockSize(
    const std::vector<int64_t>& seqlens, const std::vector<SequenceMask>& masks,
    const ClusterSpec& cluster, const PlannerOptions& base_options,
    const std::vector<int64_t>& block_sizes = {512, 1024, 2048, 4096});

}  // namespace dcp

#endif  // DCP_CORE_PLANNER_H_
