#include "core/planner.h"

#include <chrono>

#include "common/check.h"
#include "core/block_gen.h"
#include "core/hypergraph_build.h"
#include "core/plan_compile.h"
#include "core/schedule.h"
#include "runtime/plan_validate.h"
#include "runtime/sim_engine.h"

namespace dcp {

BatchLayout PlannerOptions::MakeLayout(const std::vector<int64_t>& seqlens) const {
  BatchLayout layout;
  layout.seqlens = seqlens;
  layout.block_size = block_size;
  layout.num_groups = num_groups;
  layout.heads_per_group = heads_per_group;
  layout.head_dim = head_dim;
  layout.bytes_per_element = bytes_per_element;
  return layout;
}

BatchPlan PlanBatch(const std::vector<int64_t>& seqlens,
                    const std::vector<SequenceMask>& masks, const ClusterSpec& cluster,
                    const PlannerOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  const BatchLayout layout = options.MakeLayout(seqlens);
  const BlockGraph graph = GenerateBlocks(layout, masks);
  const BuiltHypergraph built = BuildPlacementHypergraph(graph);

  PlacementOptions placement_options;
  placement_options.num_nodes = cluster.num_nodes;
  placement_options.devices_per_node = cluster.devices_per_node;
  placement_options.eps_inter = options.eps_inter;
  placement_options.eps_intra = options.eps_intra;
  placement_options.eps_data = options.eps_data;
  placement_options.hierarchical = options.hierarchical;
  placement_options.use_multilevel = options.use_multilevel;
  placement_options.seed = options.seed;
  const PlacementResult placement = PlaceBlocks(graph, built, placement_options);

  ScheduleOptions schedule_options;
  schedule_options.divisions = options.divisions;
  const ScheduleResult schedule =
      ScheduleBlocks(graph, placement, cluster.num_devices(), schedule_options);

  BatchPlan plan = CompilePlan(graph, placement, schedule, cluster);
  plan.stats.partition_cost = placement.device_level_cost;

  const PlanValidation validation = ValidatePlan(plan);
  DCP_CHECK(validation.ok) << "planner produced an invalid plan: " << validation.Summary();

  plan.stats.planning_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return plan;
}

BlockSizeSearchResult SearchBlockSize(const std::vector<int64_t>& seqlens,
                                      const std::vector<SequenceMask>& masks,
                                      const ClusterSpec& cluster,
                                      const PlannerOptions& base_options,
                                      const std::vector<int64_t>& block_sizes) {
  DCP_CHECK(!block_sizes.empty());
  SimEngine sim{CostModel(cluster)};
  BlockSizeSearchResult result;
  for (int64_t block_size : block_sizes) {
    PlannerOptions options = base_options;
    options.block_size = block_size;
    BatchPlan plan = PlanBatch(seqlens, masks, cluster, options);
    const double seconds =
        sim.Simulate(plan, false).makespan + sim.Simulate(plan, true).makespan;
    result.candidates.emplace_back(block_size, seconds);
    if (result.best_block_size == 0 || seconds < result.best_fwbw_seconds) {
      result.best_block_size = block_size;
      result.best_fwbw_seconds = seconds;
      result.best_plan = std::move(plan);
    }
  }
  return result;
}

}  // namespace dcp
