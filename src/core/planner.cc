#include "core/planner.h"

#include <functional>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/block_gen.h"
#include "core/hypergraph_build.h"
#include "core/plan_compile.h"
#include "core/schedule.h"
#include "runtime/plan_validate.h"
#include "runtime/sim_engine.h"

namespace dcp {

BatchLayout PlannerOptions::MakeLayout(const std::vector<int64_t>& seqlens) const {
  BatchLayout layout;
  layout.seqlens = seqlens;
  layout.block_size = block_size;
  layout.num_groups = num_groups;
  layout.heads_per_group = heads_per_group;
  layout.head_dim = head_dim;
  layout.bytes_per_element = bytes_per_element;
  return layout;
}

BatchPlan PlanBatch(const std::vector<int64_t>& seqlens,
                    const std::vector<SequenceMask>& masks, const ClusterSpec& cluster,
                    const PlannerOptions& options) {
  const int64_t start_ns = metrics::MonotonicNanos();

  const BatchLayout layout = options.MakeLayout(seqlens);
  const BlockGraph graph = GenerateBlocks(layout, masks);
  const BuiltHypergraph built = BuildPlacementHypergraph(graph);

  PlacementOptions placement_options;
  placement_options.num_nodes = cluster.num_nodes;
  placement_options.devices_per_node = cluster.devices_per_node;
  placement_options.eps_inter = options.eps_inter;
  placement_options.eps_intra = options.eps_intra;
  placement_options.eps_data = options.eps_data;
  placement_options.hierarchical = options.hierarchical;
  placement_options.use_multilevel = options.use_multilevel;
  placement_options.seed = options.seed;
  placement_options.vcycles = options.partition_vcycles;
  placement_options.vcycle_iterations = options.partition_vcycle_iterations;
  placement_options.refinement_passes = options.partition_refinement_passes;
  placement_options.initial_tries = options.partition_initial_tries;
  placement_options.coarsen_until_per_part = options.partition_coarsen_until_per_part;
  placement_options.coarsening_grain = options.partition_coarsening_grain;
  const PlacementResult placement = PlaceBlocks(graph, built, placement_options);

  ScheduleOptions schedule_options;
  schedule_options.divisions = options.divisions;
  const ScheduleResult schedule =
      ScheduleBlocks(graph, placement, cluster.num_devices(), schedule_options);

  BatchPlan plan = CompilePlan(graph, placement, schedule, cluster);
  plan.stats.partition_cost = placement.device_level_cost;

  const PlanValidation validation = ValidatePlan(plan);
  DCP_CHECK(validation.ok) << "planner produced an invalid plan: " << validation.Summary();

  plan.stats.planning_seconds =
      static_cast<double>(metrics::MonotonicNanos() - start_ns) * 1e-9;

  // Phase decomposition for the ambient trace and the global phase counters:
  // the partitioner's multilevel stages, plus everything else PlanBatch did
  // (block generation, hypergraph build, scheduling, compile, validation).
  const auto to_us = [](double seconds) {
    return seconds > 0.0 ? static_cast<int64_t>(seconds * 1e6) : 0;
  };
  metrics::RecordPhase(metrics::TracePhase::kPlanCoarsen,
                       to_us(placement.stages.coarsen));
  metrics::RecordPhase(metrics::TracePhase::kPlanInitial,
                       to_us(placement.stages.initial));
  metrics::RecordPhase(metrics::TracePhase::kPlanRefine,
                       to_us(placement.stages.refine));
  metrics::RecordPhase(
      metrics::TracePhase::kPlanOther,
      to_us(plan.stats.planning_seconds - placement.stages.Total()));
  return plan;
}

BlockSizeSearchResult SearchBlockSize(const std::vector<int64_t>& seqlens,
                                      const std::vector<SequenceMask>& masks,
                                      const ClusterSpec& cluster,
                                      const PlannerOptions& base_options,
                                      const std::vector<int64_t>& block_sizes) {
  DCP_CHECK(!block_sizes.empty());
  // Candidate block sizes are independent: plan and price each one concurrently on the
  // global pool, each into its own slot, then pick the winner with the same sequential
  // scan as before (first candidate wins ties), so the result is identical to a
  // sequential search regardless of thread count. PlanBatch itself fans its partitioner
  // portfolio out on the same pool; ParallelInvoke nests safely.
  std::vector<BatchPlan> plans(block_sizes.size());
  std::vector<double> seconds(block_sizes.size(), 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(block_sizes.size());
  for (size_t i = 0; i < block_sizes.size(); ++i) {
    tasks.emplace_back([&, i]() {
      PlannerOptions options = base_options;
      options.block_size = block_sizes[i];
      plans[i] = PlanBatch(seqlens, masks, cluster, options);
      SimEngine sim{CostModel(cluster)};
      seconds[i] =
          sim.Simulate(plans[i], false).makespan + sim.Simulate(plans[i], true).makespan;
    });
  }
  GlobalThreadPool().ParallelInvoke(std::move(tasks));

  BlockSizeSearchResult result;
  for (size_t i = 0; i < block_sizes.size(); ++i) {
    result.candidates.emplace_back(block_sizes[i], seconds[i]);
    if (result.best_block_size == 0 || seconds[i] < result.best_fwbw_seconds) {
      result.best_block_size = block_sizes[i];
      result.best_fwbw_seconds = seconds[i];
      result.best_plan = std::move(plans[i]);
    }
  }
  return result;
}

}  // namespace dcp
