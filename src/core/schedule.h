// Computation/communication division scheduling (paper §4.3, Listing 3): groups each
// device's computation blocks into T divisions so that the communication of division t+1
// overlaps the computation of division t. Division 0 holds the communication-free blocks;
// middle divisions are filled greedily under a per-division communication budget
// (total-required-communication / T, per source device); the last division takes the rest.
#ifndef DCP_CORE_SCHEDULE_H_
#define DCP_CORE_SCHEDULE_H_

#include <vector>

#include "core/block_gen.h"
#include "core/placement.h"

namespace dcp {

struct ScheduleOptions {
  int divisions = 4;  // The paper fixes T = 4.
};

struct ScheduleResult {
  // divisions[device][t] = computation block indices (into BlockGraph::comp_blocks).
  std::vector<std::vector<std::vector<int>>> divisions;

  // Optional: KV blocks force-fetched in a division regardless of whether any scheduled
  // tile consumes them. Static ring baselines circulate *every* KV partition through every
  // ring position — including blocks the local mask never touches; this is the redundant
  // communication the paper's Fig. 7 counts and DCP eliminates. Keys are encoded as
  // global_chunk * num_groups + group. Empty when unused (DCP plans).
  std::vector<std::vector<std::vector<int64_t>>> forced_kv_keys;

  int num_divisions() const {
    return divisions.empty() ? 0 : static_cast<int>(divisions.front().size());
  }
};

ScheduleResult ScheduleBlocks(const BlockGraph& graph, const PlacementResult& placement,
                              int num_devices, const ScheduleOptions& options);

}  // namespace dcp

#endif  // DCP_CORE_SCHEDULE_H_
