// The DCP data loader (paper §3.1 + §6.1): batches sequences, builds masks, and plans
// look-ahead iterations asynchronously on the Engine's thread pool so planning overlaps
// "model execution". Mirrors the paper's DCPDataloader(dataset, mask_fn) interface, with
// the session state (planner options, plan cache, pool) owned by a shared dcp::Engine —
// repeated batch shapes come back as cache hits, and plans travel through the lookahead
// queue as shared immutable handles instead of deep copies.
#ifndef DCP_CORE_DATALOADER_H_
#define DCP_CORE_DATALOADER_H_

#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "data/batching.h"
#include "masks/mask.h"
#include "runtime/cluster.h"

namespace dcp {

// One planned training iteration, ready for the executor. The compiled plan (instruction
// streams + masks + signature) is shared and immutable; pass `handle` straight to
// DcpExecutor::Prepare to get incremental buffer reuse on repeated signatures.
struct PlannedIteration {
  Batch batch;
  PlanHandle handle;

  const BatchPlan& plan() const { return handle->plan; }
  const std::vector<SequenceMask>& masks() const { return handle->masks; }
};

class DcpDataLoader {
 public:
  // Session-API constructor: plans on `engine` (shared with other loaders/tools so they
  // see one plan cache). `lookahead` is the paper's kappa: iterations planned ahead of
  // consumption. When engine->options().auto_tune_block_size is set, every batch goes
  // through the per-signature block-size tuner instead of the fixed block size.
  DcpDataLoader(BatchStream stream, MaskSpec mask_spec, std::shared_ptr<Engine> engine,
                int lookahead = 2);

  // Planner-interface constructor: plans on any Planner — an Engine, or a
  // service::PlanClient pointed at a remote planning service. Look-ahead jobs run on
  // the planner's pool either way, so planning (local or RPC) still overlaps "model
  // execution".
  DcpDataLoader(BatchStream stream, MaskSpec mask_spec,
                std::shared_ptr<Planner> planner, int lookahead = 2);

  // Paper-facade constructor (Listing 2 spelling): builds a private Engine from the
  // cluster spec and planner options. `planner_threads` sizes its pool (paper §6.1).
  DcpDataLoader(BatchStream stream, MaskSpec mask_spec, ClusterSpec cluster,
                PlannerOptions options, int lookahead = 2, int planner_threads = 2);
  ~DcpDataLoader();

  // Blocks until the next iteration's plan is ready (usually instant once warmed up).
  PlannedIteration Next();

  // True while the look-ahead window is fully planned (for tests/diagnostics).
  int PendingPlans() const;

  // The backing Engine. Only valid when the loader was constructed over one (directly
  // or via the facade ctor); a loader over a remote PlanClient has no local engine.
  Engine& engine() {
    DCP_CHECK(engine_ != nullptr) << "loader is backed by a remote planner, not an Engine";
    return *engine_;
  }
  Planner& planner() { return *planner_; }

 private:
  void EnqueueOne();

  BatchStream stream_;
  MaskSpec mask_spec_;
  std::shared_ptr<Planner> planner_;
  std::shared_ptr<Engine> engine_;  // Set when planner_ is an Engine.
  int lookahead_;
  std::deque<std::future<PlannedIteration>> pending_;

  // Look-ahead effectiveness: how long Next() blocked on an unfinished plan
  // (zero when planning fully hides behind "model execution"), how often it
  // had to block at all, how many look-ahead slots were already planned, and
  // how many transient remote failures the retry loop absorbed.
  metrics::Histogram* next_wait_us_ = nullptr;
  metrics::Counter* stalls_ = nullptr;
  metrics::Counter* retries_ = nullptr;
  metrics::Gauge* ready_ = nullptr;
};

}  // namespace dcp

#endif  // DCP_CORE_DATALOADER_H_
