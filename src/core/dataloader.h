// The DCP data loader (paper §3.1 + §6.1): batches sequences, builds masks, and plans
// look-ahead iterations asynchronously on a thread pool so planning overlaps "model
// execution". Mirrors the paper's DCPDataloader(dataset, mask_fn) interface.
#ifndef DCP_CORE_DATALOADER_H_
#define DCP_CORE_DATALOADER_H_

#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/planner.h"
#include "data/batching.h"
#include "masks/mask.h"
#include "runtime/cluster.h"

namespace dcp {

// One planned training iteration, ready for the executor.
struct PlannedIteration {
  Batch batch;
  std::vector<SequenceMask> masks;
  BatchPlan plan;
};

class DcpDataLoader {
 public:
  // `lookahead` is the paper's kappa: iterations planned ahead of consumption.
  // `planner_threads` parallelizes planning across iterations (paper §6.1).
  DcpDataLoader(BatchStream stream, MaskSpec mask_spec, ClusterSpec cluster,
                PlannerOptions options, int lookahead = 2, int planner_threads = 2);
  ~DcpDataLoader();

  // Blocks until the next iteration's plan is ready (usually instant once warmed up).
  PlannedIteration Next();

  // True while the look-ahead window is fully planned (for tests/diagnostics).
  int PendingPlans() const;

 private:
  void EnqueueOne();

  BatchStream stream_;
  MaskSpec mask_spec_;
  ClusterSpec cluster_;
  PlannerOptions options_;
  int lookahead_;
  std::unique_ptr<ThreadPool> pool_;
  std::deque<std::future<PlannedIteration>> pending_;
};

}  // namespace dcp

#endif  // DCP_CORE_DATALOADER_H_
