#include "core/hypergraph_build.h"

#include <vector>

#include "common/check.h"

namespace dcp {

BuiltHypergraph BuildPlacementHypergraph(const BlockGraph& graph) {
  const BatchLayout& layout = graph.layout;
  BuiltHypergraph built;
  built.num_chunk_vertices = graph.num_chunks();

  for (const TokenChunk& chunk : graph.chunks) {
    built.hg.AddVertex(0.0, static_cast<double>(chunk.bytes));
  }
  for (const CompBlock& block : graph.comp_blocks) {
    built.hg.AddVertex(block.flops, 0.0);
  }

  // Collect, per (global chunk, group), the computation blocks touching the chunk's Q/O
  // blocks and its KV block.
  const int num_groups = layout.num_groups;
  const size_t buckets =
      static_cast<size_t>(graph.num_chunks()) * static_cast<size_t>(num_groups);
  std::vector<std::vector<VertexId>> qo_pins(buckets);
  std::vector<std::vector<VertexId>> kv_pins(buckets);
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    const CompBlock& block = graph.comp_blocks[static_cast<size_t>(i)];
    const int q_gc = layout.GlobalChunkId(block.seq, block.q_chunk);
    const int kv_gc = layout.GlobalChunkId(block.seq, block.kv_chunk);
    const size_t q_key =
        static_cast<size_t>(q_gc) * static_cast<size_t>(num_groups) +
        static_cast<size_t>(block.group);
    const size_t kv_key =
        static_cast<size_t>(kv_gc) * static_cast<size_t>(num_groups) +
        static_cast<size_t>(block.group);
    qo_pins[q_key].push_back(built.CompVertex(i));
    kv_pins[kv_key].push_back(built.CompVertex(i));
  }

  for (int gc = 0; gc < graph.num_chunks(); ++gc) {
    const TokenChunk& chunk = graph.chunks[static_cast<size_t>(gc)];
    const int64_t len = chunk.length();
    for (GroupId g = 0; g < num_groups; ++g) {
      const size_t key =
          static_cast<size_t>(gc) * static_cast<size_t>(num_groups) + static_cast<size_t>(g);
      if (!qo_pins[key].empty()) {
        std::vector<VertexId> pins = qo_pins[key];
        pins.push_back(built.ChunkVertex(gc));
        const double weight = static_cast<double>(layout.QBlockBytes(len)) +
                              static_cast<double>(layout.OBlockBytes(len));
        built.hg.AddEdge(weight, std::move(pins));
      }
      if (!kv_pins[key].empty()) {
        std::vector<VertexId> pins = kv_pins[key];
        pins.push_back(built.ChunkVertex(gc));
        built.hg.AddEdge(static_cast<double>(layout.KvBlockBytes(len)), std::move(pins));
      }
    }
  }
  built.hg.Finalize();
  return built;
}

}  // namespace dcp
