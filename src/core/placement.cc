#include "core/placement.h"

#include <memory>

#include "common/check.h"

namespace dcp {
namespace {

std::unique_ptr<Partitioner> MakePartitioner(const PlacementOptions& options) {
  return options.use_multilevel ? MakeMultilevelPartitioner() : MakeGreedyPartitioner();
}

// Applies the placement-level partitioner overrides; non-positive fields keep the
// PartitionConfig defaults (vcycle_iterations: -1 keeps, 0 disables).
void ApplyPartitionerKnobs(const PlacementOptions& options, PartitionConfig& config) {
  if (options.vcycles > 0) {
    config.vcycles = options.vcycles;
  }
  if (options.vcycle_iterations >= 0) {
    config.vcycle_iterations = options.vcycle_iterations;
  }
  if (options.refinement_passes > 0) {
    config.refinement_passes = options.refinement_passes;
  }
  if (options.initial_tries > 0) {
    config.initial_tries = options.initial_tries;
  }
  if (options.coarsen_until_per_part > 0) {
    config.coarsen_until_per_part = options.coarsen_until_per_part;
  }
  if (options.coarsening_grain > 0) {
    config.coarsening_grain = options.coarsening_grain;
  }
}

// Extracts the sub-hypergraph induced by the vertices with sub_index >= 0. Edges keep only
// in-subset pins; edges left with < 2 pins are dropped (they can no longer be cut).
Hypergraph InducedSubgraph(const Hypergraph& hg, const std::vector<int32_t>& sub_index,
                           int sub_count) {
  Hypergraph sub;
  std::vector<VertexWeight> weights(static_cast<size_t>(sub_count));
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    const int32_t idx = sub_index[static_cast<size_t>(v)];
    if (idx >= 0) {
      weights[static_cast<size_t>(idx)] = hg.vertex_weight(v);
    }
  }
  for (const VertexWeight& w : weights) {
    sub.AddVertex(w[0], w[1]);
  }
  std::vector<VertexId> pins;
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    pins.clear();
    auto [pbegin, pend] = hg.EdgePins(e);
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      const int32_t idx = sub_index[static_cast<size_t>(*pp)];
      if (idx >= 0) {
        pins.push_back(idx);
      }
    }
    if (pins.size() >= 2) {
      sub.AddEdge(hg.edge_weight(e), pins);
    }
  }
  sub.Finalize();
  return sub;
}

}  // namespace

PlacementResult PlaceBlocks(const BlockGraph& graph, const BuiltHypergraph& built,
                            const PlacementOptions& options) {
  const Hypergraph& hg = built.hg;
  const int num_devices = options.num_nodes * options.devices_per_node;
  DCP_CHECK_GE(num_devices, 1);
  auto partitioner = MakePartitioner(options);

  // Vertex -> global device.
  std::vector<DeviceId> device(static_cast<size_t>(hg.num_vertices()), 0);
  double total_cost = 0.0;
  bool balanced = true;
  PartitionStageSeconds stages;

  if (num_devices == 1) {
    // Single device: nothing to place.
  } else if (!options.hierarchical || options.num_nodes == 1 ||
             options.devices_per_node == 1) {
    PartitionConfig config;
    config.k = num_devices;
    config.eps = {options.num_nodes == 1 ? options.eps_intra : options.eps_inter,
                  options.eps_data};
    config.seed = options.seed;
    ApplyPartitionerKnobs(options, config);
    PartitionResult result = partitioner->Run(hg, config);
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      device[static_cast<size_t>(v)] = result.part[static_cast<size_t>(v)];
    }
    total_cost = result.connectivity_cost;
    balanced = result.balanced;
    stages.Accumulate(result.stages);
  } else {
    // Level 1: machines.
    PartitionConfig node_config;
    node_config.k = options.num_nodes;
    node_config.eps = {options.eps_inter, options.eps_data};
    node_config.seed = options.seed;
    ApplyPartitionerKnobs(options, node_config);
    PartitionResult node_result = partitioner->Run(hg, node_config);
    total_cost += node_result.connectivity_cost;
    balanced = node_result.balanced;
    stages.Accumulate(node_result.stages);

    // Level 2: devices within each machine.
    for (int node = 0; node < options.num_nodes; ++node) {
      std::vector<int32_t> sub_index(static_cast<size_t>(hg.num_vertices()), -1);
      std::vector<VertexId> members;
      for (VertexId v = 0; v < hg.num_vertices(); ++v) {
        if (node_result.part[static_cast<size_t>(v)] == node) {
          sub_index[static_cast<size_t>(v)] = static_cast<int32_t>(members.size());
          members.push_back(v);
        }
      }
      if (members.empty()) {
        continue;
      }
      Hypergraph sub = InducedSubgraph(hg, sub_index, static_cast<int>(members.size()));
      PartitionConfig dev_config;
      dev_config.k = options.devices_per_node;
      dev_config.eps = {options.eps_intra, options.eps_data};
      dev_config.seed = options.seed + static_cast<uint64_t>(node) + 1;
      ApplyPartitionerKnobs(options, dev_config);
      PartitionResult dev_result = partitioner->Run(sub, dev_config);
      total_cost += dev_result.connectivity_cost;
      balanced = balanced && dev_result.balanced;
      stages.Accumulate(dev_result.stages);
      for (size_t i = 0; i < members.size(); ++i) {
        device[static_cast<size_t>(members[i])] =
            node * options.devices_per_node + dev_result.part[i];
      }
    }
  }

  PlacementResult result;
  result.device_level_cost = total_cost;
  result.balanced = balanced;
  result.stages = stages;
  result.chunk_device.resize(static_cast<size_t>(graph.num_chunks()));
  for (int gc = 0; gc < graph.num_chunks(); ++gc) {
    result.chunk_device[static_cast<size_t>(gc)] =
        device[static_cast<size_t>(built.ChunkVertex(gc))];
  }
  result.comp_device.resize(static_cast<size_t>(graph.num_comp_blocks()));
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    result.comp_device[static_cast<size_t>(i)] =
        device[static_cast<size_t>(built.CompVertex(i))];
  }
  return result;
}

}  // namespace dcp
