// Plan compilation: lowers (blocks, placement, divisions) into per-device instruction
// streams over buffer slots — the executable form of a parallelization configuration
// (paper §4.3 end + §5). Emits both the forward and the backward program:
//
//   forward:  [launch div1 | compute div0 | wait div1 | launch div2 | compute div1 | ...]
//             then partial-accumulator returns, softmax merges and output finalization;
//   backward: delta computation, the same pipeline with Q/dO/delta/stats + KV refetches,
//             then dQ/dKV partial returns and sum reductions.
#ifndef DCP_CORE_PLAN_COMPILE_H_
#define DCP_CORE_PLAN_COMPILE_H_

#include "core/block_gen.h"
#include "core/placement.h"
#include "core/schedule.h"
#include "runtime/cluster.h"
#include "runtime/instructions.h"

namespace dcp {

BatchPlan CompilePlan(const BlockGraph& graph, const PlacementResult& placement,
                      const ScheduleResult& schedule, const ClusterSpec& cluster);

}  // namespace dcp

#endif  // DCP_CORE_PLAN_COMPILE_H_
