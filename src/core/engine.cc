#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/check.h"

namespace dcp {
namespace {

std::string BadField(const char* what, int64_t value) {
  return std::string(what) + " (got " + std::to_string(value) + ")";
}

}  // namespace

Status ValidatePlanRequest(std::span<const int64_t> seqlens, const MaskSpec& mask_spec,
                           const ClusterSpec& cluster, const PlannerOptions& options) {
  if (seqlens.empty()) {
    return Status::InvalidArgument("seqlens must be non-empty");
  }
  for (size_t s = 0; s < seqlens.size(); ++s) {
    if (seqlens[s] <= 0) {
      return Status::InvalidArgument("seqlens[" + std::to_string(s) +
                                     "] must be positive (got " +
                                     std::to_string(seqlens[s]) + ")");
    }
  }
  if (cluster.num_nodes <= 0) {
    return Status::InvalidArgument(BadField("cluster.num_nodes must be positive",
                                            cluster.num_nodes));
  }
  if (cluster.devices_per_node <= 0) {
    return Status::InvalidArgument(BadField("cluster.devices_per_node must be positive",
                                            cluster.devices_per_node));
  }
  if (options.block_size <= 0) {
    return Status::InvalidArgument(BadField("block_size must be positive",
                                            options.block_size));
  }
  if (options.num_groups <= 0) {
    return Status::InvalidArgument(BadField("num_groups must be positive",
                                            options.num_groups));
  }
  if (options.heads_per_group <= 0) {
    return Status::InvalidArgument(BadField("heads_per_group must be positive",
                                            options.heads_per_group));
  }
  if (options.head_dim <= 0) {
    return Status::InvalidArgument(BadField("head_dim must be positive",
                                            options.head_dim));
  }
  if (options.bytes_per_element <= 0) {
    return Status::InvalidArgument(BadField("bytes_per_element must be positive",
                                            options.bytes_per_element));
  }
  if (options.divisions <= 0) {
    return Status::InvalidArgument(BadField("divisions must be positive",
                                            options.divisions));
  }
  switch (mask_spec.kind) {
    case MaskKind::kCausal:
      break;
    case MaskKind::kLambda:
      if (mask_spec.sink_tokens < 0) {
        return Status::InvalidArgument(BadField("lambda sink_tokens must be >= 0",
                                                mask_spec.sink_tokens));
      }
      if (mask_spec.window_tokens <= 0) {
        return Status::InvalidArgument(BadField("lambda window_tokens must be positive",
                                                mask_spec.window_tokens));
      }
      break;
    case MaskKind::kCausalBlockwise:
      if (mask_spec.icl_block_tokens <= 0) {
        return Status::InvalidArgument(BadField("icl_block_tokens must be positive",
                                                mask_spec.icl_block_tokens));
      }
      if (mask_spec.window_blocks < 0 || mask_spec.sink_blocks < 0 ||
          mask_spec.test_blocks < 0) {
        return Status::InvalidArgument("blockwise window/sink/test block counts must be >= 0");
      }
      break;
    case MaskKind::kSharedQuestion:
      if (mask_spec.num_answers <= 0) {
        return Status::InvalidArgument(BadField("shared-question num_answers must be positive",
                                                mask_spec.num_answers));
      }
      if (mask_spec.answer_fraction <= 0.0 ||
          mask_spec.answer_fraction * mask_spec.num_answers >= 1.0 + 1e-9) {
        return Status::InvalidArgument(
            "shared-question answer_fraction must be in (0, 1/num_answers]");
      }
      break;
  }
  return Status::Ok();
}

Engine::Engine(ClusterSpec cluster, EngineOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  DCP_CHECK_GE(options_.plan_cache_capacity, 0);
  DCP_CHECK_GE(options_.tune_cache_capacity, 0);
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.planner_threads));
  metrics_ = metrics::Registry::NewAttached(
      options_.metrics_tenant.empty()
          ? std::vector<metrics::Label>{}
          : std::vector<metrics::Label>{{"tenant", options_.metrics_tenant}});
  plan_latency_us_ = metrics_->GetHistogram(
      "dcp_engine_plan_latency_us", {},
      "Fresh-plan latency (cache and store both missed)");
  tune_latency_us_ = metrics_->GetHistogram(
      "dcp_engine_tune_latency_us", {}, "Full block-size search latency");
  tune_hits_ = metrics_->GetCounter("dcp_engine_tune_hits_total", {},
                                    "Auto-tune winner cache hits");
  tune_misses_ = metrics_->GetCounter("dcp_engine_tune_misses_total", {},
                                      "Auto-tune winner cache misses");
  if (!options_.plan_store_path.empty()) {
    StatusOr<std::unique_ptr<PlanStore>> store =
        PlanStore::Open(options_.plan_store_path, metrics_.get());
    if (store.ok()) {
      store_ = std::move(store).value();
    } else {
      // An unusable warm-start directory must not kill a training job: degrade to
      // store-less planning, keep the error observable.
      store_status_ = store.status();
      std::fprintf(stderr, "dcp::Engine: plan store disabled: %s\n",
                   store_status_.ToString().c_str());
    }
  }
  // Never more shards than capacity: a zero-capacity shard would silently refuse to
  // cache the signatures hashing into it.
  const int shards = std::max(
      1, std::min(options_.plan_cache_shards, std::max(1, options_.plan_cache_capacity)));
  shards_.reserve(static_cast<size_t>(shards));
  // Distribute the capacity exactly: the shard sum equals plan_cache_capacity, so the
  // configured bound is never overshot (the first `capacity % shards` shards take the
  // remainder).
  const int64_t base = options_.plan_cache_capacity / shards;
  const int64_t remainder = options_.plan_cache_capacity % shards;
  for (int s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (s < remainder ? 1 : 0);
    const std::vector<metrics::Label> labels = {{"shard", std::to_string(s)}};
    shard->hits = metrics_->GetCounter("dcp_engine_cache_hits_total", labels,
                                       "Plan cache hits");
    shard->misses = metrics_->GetCounter("dcp_engine_cache_misses_total", labels,
                                         "Plan cache misses");
    shard->evictions = metrics_->GetCounter("dcp_engine_cache_evictions_total", labels,
                                            "Plan cache LRU evictions");
    shard->hit_latency_us = metrics_->GetHistogram(
        "dcp_engine_cache_hit_latency_us", labels,
        "Signature + probe latency on the hit path (sampled 1 in 16 when untraced)");
    shards_.push_back(std::move(shard));
  }
}

Engine::~Engine() = default;

Engine::Shard& Engine::ShardFor(const PlanSignature& sig) {
  return *shards_[static_cast<size_t>(sig.lo % shards_.size())];
}

PlanHandle Engine::CacheLookup(const PlanSignature& sig) {
  Shard& shard = ShardFor(sig);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(sig);
  if (it == shard.index.end()) {
    // Counted even with caching disabled so cache_stats() reports the true cold-plan
    // rate instead of pretending the cache saw no traffic.
    shard.misses->Increment();
    return nullptr;
  }
  shard.hits->Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // Move to front.
  return *it->second;
}

PlanHandle Engine::CacheInsert(PlanHandle handle, std::vector<PlanHandle>* evicted) {
  Shard& shard = ShardFor(handle->signature);
  MutexLock lock(shard.mu);
  if (shard.capacity == 0) {
    return handle;
  }
  auto it = shard.index.find(handle->signature);
  if (it != shard.index.end()) {
    // A concurrent miss planned the same signature; keep the incumbent so callers that
    // raced still end up sharing one immutable plan.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return *it->second;
  }
  shard.lru.push_front(handle);
  shard.index.emplace(handle->signature, shard.lru.begin());
  while (static_cast<int64_t>(shard.lru.size()) > shard.capacity) {
    if (evicted != nullptr) {
      evicted->push_back(shard.lru.back());
    }
    shard.index.erase(shard.lru.back()->signature);
    shard.lru.pop_back();
    shard.evictions->Increment();
  }
  return handle;
}

PlanHandle Engine::InsertAndPersist(std::shared_ptr<CompiledPlan> compiled) {
  const CompiledPlan* fresh = compiled.get();
  std::vector<PlanHandle> evicted;
  PlanHandle inserted = CacheInsert(std::move(compiled), store_ ? &evicted : nullptr);
  if (store_ == nullptr) {
    return inserted;
  }
  // Write through the fresh plan (only if we won any insert race: the incumbent was
  // already persisted by whoever planted it) and any LRU evictions that somehow never
  // reached disk — both outside the shard lock. Write failures are non-fatal: the store
  // is an accelerator, not a source of truth.
  if (inserted.get() == fresh && !store_->Contains(inserted->signature)) {
    (void)store_->Put(inserted->signature, inserted->plan);
  }
  for (const PlanHandle& handle : evicted) {
    if (!store_->Contains(handle->signature)) {
      (void)store_->Put(handle->signature, handle->plan);
    }
  }
  return inserted;
}

PlanHandle Engine::StoreLookup(const PlanSignature& sig,
                               std::span<const int64_t> seqlens,
                               const MaskSpec& mask_spec) {
  if (store_ == nullptr) {
    return nullptr;
  }
  metrics::ScopedPhase phase(metrics::TracePhase::kStoreRead);
  StatusOr<BatchPlan> loaded = store_->Load(sig);
  if (!loaded.ok()) {
    // Absent signature (NOT_FOUND, uncounted) or a corrupt/truncated/vanished record
    // (counted by the store): either way we replan.
    return nullptr;
  }
  auto compiled = std::make_shared<CompiledPlan>();
  compiled->signature = sig;
  compiled->plan = std::move(loaded).value();
  // Masks are derived, not persisted: rebuilding them is O(tokens), planning is not.
  // This is the one disk-hit-path copy of the seqlens; the memory-hit path above never
  // materializes them.
  const std::vector<int64_t> owned(seqlens.begin(), seqlens.end());
  compiled->masks = BuildBatchMasks(mask_spec, owned);
  return CacheInsert(std::move(compiled));
}

StatusOr<PlanHandle> Engine::Plan(const std::vector<int64_t>& seqlens,
                                  const MaskSpec& mask_spec) {
  return PlanWithBlockSize(seqlens, mask_spec, options_.planner.block_size);
}

StatusOr<PlanHandle> Engine::PlanWithBlockSize(std::span<const int64_t> seqlens,
                                               const MaskSpec& mask_spec,
                                               int64_t block_size, PlanOrigin* origin) {
  PlannerOptions planner = options_.planner;
  planner.block_size = block_size;
  DCP_RETURN_IF_ERROR(ValidatePlanRequest(seqlens, mask_spec, cluster_, planner));

  // The repeat-batch hit path runs in well under a microsecond, so even one clock
  // read per request is measurable. Counters stay exact and always-on (a single
  // fetch_add under the shard lock); latency is timed for every traced request but
  // only 1 in 16 of the untraced ones — a histogram sample rate, not a data loss.
  metrics::Trace* trace = metrics::TraceContext::Current();
  const bool timed =
      trace != nullptr ||
      (metrics::RecordingEnabled() &&
       (probe_ticker_.fetch_add(1, std::memory_order_relaxed) & 0xF) == 0);
  const int64_t probe_start_ns = timed ? metrics::MonotonicNanos() : 0;

  const PlanSignature sig = ComputePlanSignature(seqlens, mask_spec, cluster_, planner);
  if (PlanHandle cached = CacheLookup(sig)) {
    if (timed) {
      const int64_t probe_us = (metrics::MonotonicNanos() - probe_start_ns) / 1000;
      metrics::RecordPhase(metrics::TracePhase::kCacheProbe, probe_us);
      ShardFor(sig).hit_latency_us->Record(probe_us);
    }
    if (origin != nullptr) {
      *origin = PlanOrigin::kMemoryCache;
    }
    return cached;
  }
  if (timed) {
    metrics::RecordPhase(metrics::TracePhase::kCacheProbe,
                         (metrics::MonotonicNanos() - probe_start_ns) / 1000);
  }
  if (PlanHandle stored = StoreLookup(sig, seqlens, mask_spec)) {
    if (origin != nullptr) {
      *origin = PlanOrigin::kStoreCache;
    }
    return stored;
  }

  if (origin != nullptr) {
    *origin = PlanOrigin::kFresh;
  }
  // Materialize only on the fresh-plan path: mask building and the planner are
  // O(tokens)-and-up, so one vector copy is noise there, while the hit path above
  // stayed copy-free.
  const std::vector<int64_t> owned(seqlens.begin(), seqlens.end());
  auto compiled = std::make_shared<CompiledPlan>();
  compiled->signature = sig;
  compiled->masks = BuildBatchMasks(mask_spec, owned);
  {
    metrics::ScopedLatencyTimer plan_timer(plan_latency_us_);
    compiled->plan = PlanBatch(owned, compiled->masks, cluster_, planner);
  }
  return InsertAndPersist(std::move(compiled));
}

std::vector<PlanHandle> Engine::CachedPlans() const {
  std::vector<PlanHandle> plans;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const PlanHandle& handle : shard->lru) {
      plans.push_back(handle);
    }
  }
  return plans;
}

StatusOr<PlanSignature> Engine::RequestSignature(std::span<const int64_t> seqlens,
                                                 const MaskSpec& mask_spec,
                                                 int64_t block_size) const {
  PlannerOptions planner = options_.planner;
  if (block_size != 0) {
    planner.block_size = block_size;
  }
  DCP_RETURN_IF_ERROR(ValidatePlanRequest(seqlens, mask_spec, cluster_, planner));
  return ComputePlanSignature(seqlens, mask_spec, cluster_, planner);
}

StatusOr<Engine::PlannedOutcome> Engine::PlanDetailed(std::span<const int64_t> seqlens,
                                                      const MaskSpec& mask_spec,
                                                      int64_t block_size) {
  PlannedOutcome outcome;
  if (block_size == 0 && options_.auto_tune_block_size) {
    StatusOr<AutoTuneResult> tuned = AutoTune(seqlens, mask_spec);
    if (!tuned.ok()) {
      return tuned.status();
    }
    outcome.handle = tuned.value().plan;
    outcome.origin = tuned.value().plan_origin;
    return outcome;
  }
  const int64_t block = block_size == 0 ? options_.planner.block_size : block_size;
  StatusOr<PlanHandle> plan =
      PlanWithBlockSize(seqlens, mask_spec, block, &outcome.origin);
  if (!plan.ok()) {
    return plan.status();
  }
  outcome.handle = std::move(plan).value();
  return outcome;
}

StatusOr<AutoTuneResult> Engine::AutoTune(std::span<const int64_t> seqlens,
                                          const MaskSpec& mask_spec) {
  if (options_.tune_block_sizes.empty()) {
    return Status::FailedPrecondition("tune_block_sizes must be non-empty");
  }
  // Validate against the first candidate; per-candidate block sizes are validated again
  // inside PlanWithBlockSize.
  PlannerOptions probe = options_.planner;
  probe.block_size = options_.tune_block_sizes.front();
  DCP_RETURN_IF_ERROR(ValidatePlanRequest(seqlens, mask_spec, cluster_, probe));
  for (int64_t candidate : options_.tune_block_sizes) {
    if (candidate <= 0) {
      return Status::InvalidArgument("tune_block_sizes entries must be positive (got " +
                                     std::to_string(candidate) + ")");
    }
  }

  const PlanSignature tune_sig = ComputeTuneSignature(
      seqlens, mask_spec, cluster_, options_.planner, options_.tune_block_sizes);
  int64_t known_winner = 0;
  {
    MutexLock lock(tune_mu_);
    auto it = tune_index_.find(tune_sig);
    if (it != tune_index_.end()) {
      tune_hits_->Increment();
      tune_lru_.splice(tune_lru_.begin(), tune_lru_, it->second);
      known_winner = it->second->second;
    } else {
      tune_misses_->Increment();
    }
  }
  if (known_winner > 0) {
    // Replanning at the recorded winner is usually a plan-cache hit; done outside the
    // tune lock so a cold replan never serializes other tuners.
    PlanOrigin origin = PlanOrigin::kFresh;
    StatusOr<PlanHandle> plan =
        PlanWithBlockSize(seqlens, mask_spec, known_winner, &origin);
    if (!plan.ok()) {
      return plan.status();
    }
    AutoTuneResult result;
    result.plan = plan.value();
    result.best_block_size = known_winner;
    result.tuned_from_cache = true;
    result.plan_origin = origin;
    return result;
  }

  // The search path plans every candidate; one seqlens copy is immaterial here (the
  // cached-winner path above never copies).
  const std::vector<int64_t> owned(seqlens.begin(), seqlens.end());
  std::vector<SequenceMask> masks = BuildBatchMasks(mask_spec, owned);
  BlockSizeSearchResult search;
  {
    metrics::ScopedLatencyTimer tune_timer(tune_latency_us_);
    search = SearchBlockSize(owned, masks, cluster_, options_.planner,
                             options_.tune_block_sizes);
  }

  if (options_.tune_cache_capacity > 0) {
    MutexLock lock(tune_mu_);
    if (tune_index_.find(tune_sig) == tune_index_.end()) {
      tune_lru_.emplace_front(tune_sig, search.best_block_size);
      tune_index_.emplace(tune_sig, tune_lru_.begin());
      while (static_cast<int64_t>(tune_lru_.size()) > options_.tune_cache_capacity) {
        tune_index_.erase(tune_lru_.back().first);
        tune_lru_.pop_back();
      }
    }
  }

  PlannerOptions winner_options = options_.planner;
  winner_options.block_size = search.best_block_size;
  auto compiled = std::make_shared<CompiledPlan>();
  compiled->signature =
      ComputePlanSignature(seqlens, mask_spec, cluster_, winner_options);
  compiled->plan = std::move(search.best_plan);
  compiled->masks = std::move(masks);

  AutoTuneResult result;
  result.plan = InsertAndPersist(std::move(compiled));
  result.best_block_size = search.best_block_size;
  result.best_fwbw_seconds = search.best_fwbw_seconds;
  result.candidates = std::move(search.candidates);
  return result;
}

StatusOr<PlanHandle> Engine::PlanForLoader(const std::vector<int64_t>& seqlens,
                                           const MaskSpec& mask_spec) {
  if (!options_.auto_tune_block_size) {
    return Plan(seqlens, mask_spec);
  }
  StatusOr<AutoTuneResult> tuned = AutoTune(seqlens, mask_spec);
  if (!tuned.ok()) {
    return tuned.status();
  }
  return tuned.value().plan;
}

// NO_THREAD_SAFETY_ANALYSIS: acquiring every shard lock of a dynamically-sized vector
// for one coherent snapshot is beyond the analysis (it cannot name N capabilities at
// once); the locking pattern below is the proof the annotation would have demanded.
PlanCacheStats Engine::cache_stats() const DCP_NO_THREAD_SAFETY_ANALYSIS {
  PlanCacheStats stats;
  // Acquire every shard lock before reading any counter: a sequential shard-by-shard
  // walk lets a concurrent Plan() land a hit in an already-read shard and an insert in
  // a not-yet-read one, so the reported totals never corresponded to any real instant.
  // Service worker threads poll this concurrently with planners, so the snapshot must
  // be coherent. Deadlock-free: every other path locks at most one shard at a time.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // dcp-analyze: allow(lock-native): N-shard coherent snapshot (see above).
    locks.emplace_back(shard->mu.native());
  }
  for (const auto& shard : shards_) {
    stats.hits += shard->hits->value();
    stats.misses += shard->misses->value();
    stats.evictions += shard->evictions->value();
    stats.entries += static_cast<int64_t>(shard->lru.size());
  }
  locks.clear();
  {
    MutexLock lock(tune_mu_);
    stats.tune_hits = tune_hits_->value();
    stats.tune_misses = tune_misses_->value();
  }
  if (store_ != nullptr) {
    const PlanStoreStats store = store_->stats();
    stats.store_hits = store.hits;
    stats.store_writes = store.writes;
    stats.store_corrupt_skipped = store.corrupt_skipped;
  }
  return stats;
}

void Engine::ClearCache() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
  MutexLock lock(tune_mu_);
  tune_lru_.clear();
  tune_index_.clear();
}

}  // namespace dcp
