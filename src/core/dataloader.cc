#include "core/dataloader.h"

#include <chrono>
#include <thread>

#include "common/check.h"

namespace dcp {

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec,
                             std::shared_ptr<Engine> engine, int lookahead)
    : DcpDataLoader(std::move(stream), mask_spec,
                    std::static_pointer_cast<Planner>(engine), lookahead) {}

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec,
                             std::shared_ptr<Planner> planner, int lookahead)
    : stream_(std::move(stream)),
      mask_spec_(mask_spec),
      planner_(std::move(planner)),
      lookahead_(lookahead) {
  DCP_CHECK(planner_ != nullptr);
  DCP_CHECK_GE(lookahead, 0);
  engine_ = std::dynamic_pointer_cast<Engine>(planner_);
  metrics::Registry& registry = metrics::Registry::Global();
  next_wait_us_ = registry.GetHistogram(
      "dcp_loader_next_wait_us", {},
      "Time Next() blocked waiting for the front look-ahead plan, microseconds.");
  stalls_ = registry.GetCounter(
      "dcp_loader_stalls_total", {},
      "Next() calls whose plan was not ready yet (look-ahead miss).");
  retries_ = registry.GetCounter(
      "dcp_loader_plan_retries_total", {},
      "Transient (UNAVAILABLE) planning failures absorbed by the retry loop.");
  ready_ = registry.GetGauge(
      "dcp_loader_lookahead_ready", {},
      "Look-ahead slots whose plan was already finished at the last Next().");
  for (int i = 0; i <= lookahead_; ++i) {
    EnqueueOne();
  }
}

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec, ClusterSpec cluster,
                             PlannerOptions options, int lookahead, int planner_threads)
    : DcpDataLoader(std::move(stream), mask_spec,
                    std::make_shared<Engine>(cluster,
                                             [&] {
                                               EngineOptions engine_options;
                                               engine_options.planner = options;
                                               engine_options.planner_threads =
                                                   planner_threads;
                                               return engine_options;
                                             }()),
                    lookahead) {}

DcpDataLoader::~DcpDataLoader() {
  // Drain in-flight planning jobs before tearing down the engine pool.
  for (auto& fut : pending_) {
    fut.wait();
  }
}

void DcpDataLoader::EnqueueOne() {
  // Sampling the batch is cheap and must stay deterministic, so it happens on the calling
  // thread; only the planning runs on the engine's pool. The stream's lengths are always
  // positive, so a persistent planning failure here is a configuration bug — surfaced
  // loudly. UNAVAILABLE is the exception: a remote planner (PlanClient) returns it for
  // transient conditions — an overloaded server, a dropped connection mid-restart — and
  // a training job must ride those out, not abort, so the look-ahead job retries with a
  // short backoff before giving up.
  Batch batch = stream_.NextBatch();
  MaskSpec mask_spec = mask_spec_;
  Planner* planner = planner_.get();
  metrics::Counter* retries = retries_;
  pending_.push_back(planner_->pool().Submit(
      [batch = std::move(batch), mask_spec, planner, retries]() mutable {
        StatusOr<PlanHandle> handle = planner->PlanForLoader(batch.seqlens, mask_spec);
        for (int retry = 0;
             retry < 5 && !handle.ok() &&
             handle.status().code() == StatusCode::kUnavailable;
             ++retry) {
          retries->Increment();
          std::this_thread::sleep_for(std::chrono::milliseconds(20 << retry));
          handle = planner->PlanForLoader(batch.seqlens, mask_spec);
        }
        DCP_CHECK(handle.ok()) << "look-ahead planning failed: "
                               << handle.status().ToString();
        PlannedIteration iteration;
        iteration.batch = std::move(batch);
        iteration.handle = std::move(handle).value();
        return iteration;
      }));
}

PlannedIteration DcpDataLoader::Next() {
  DCP_CHECK(!pending_.empty());
  std::future<PlannedIteration> front = std::move(pending_.front());
  pending_.pop_front();
  EnqueueOne();
  // One wait_for(0) per slot: the window is small (kappa+1 futures), and the
  // ready count is the paper's look-ahead-effectiveness signal.
  int64_t ready = 0;
  for (const auto& fut : pending_) {
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ++ready;
    }
  }
  ready_->Set(ready);
  if (front.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    stalls_->Increment();
    metrics::ScopedLatencyTimer wait_timer(next_wait_us_);
    return front.get();
  }
  return front.get();
}

int DcpDataLoader::PendingPlans() const { return static_cast<int>(pending_.size()); }

}  // namespace dcp
