#include "core/dataloader.h"

#include "common/check.h"

namespace dcp {

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec, ClusterSpec cluster,
                             PlannerOptions options, int lookahead, int planner_threads)
    : stream_(std::move(stream)),
      mask_spec_(mask_spec),
      cluster_(cluster),
      options_(options),
      lookahead_(lookahead) {
  DCP_CHECK_GE(lookahead, 0);
  pool_ = std::make_unique<ThreadPool>(std::max(1, planner_threads));
  for (int i = 0; i <= lookahead_; ++i) {
    EnqueueOne();
  }
}

DcpDataLoader::~DcpDataLoader() {
  // Drain in-flight planning jobs before tearing down the pool.
  for (auto& fut : pending_) {
    fut.wait();
  }
}

void DcpDataLoader::EnqueueOne() {
  // Sampling the batch is cheap and must stay deterministic, so it happens on the calling
  // thread; only the planning runs on the pool.
  Batch batch = stream_.NextBatch();
  MaskSpec mask_spec = mask_spec_;
  ClusterSpec cluster = cluster_;
  PlannerOptions options = options_;
  pending_.push_back(pool_->Submit([batch = std::move(batch), mask_spec, cluster,
                                    options]() mutable {
    PlannedIteration iteration;
    iteration.masks = BuildBatchMasks(mask_spec, batch.seqlens);
    iteration.plan = PlanBatch(batch.seqlens, iteration.masks, cluster, options);
    iteration.batch = std::move(batch);
    return iteration;
  }));
}

PlannedIteration DcpDataLoader::Next() {
  DCP_CHECK(!pending_.empty());
  std::future<PlannedIteration> front = std::move(pending_.front());
  pending_.pop_front();
  EnqueueOne();
  return front.get();
}

int DcpDataLoader::PendingPlans() const { return static_cast<int>(pending_.size()); }

}  // namespace dcp
