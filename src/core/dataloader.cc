#include "core/dataloader.h"

#include "common/check.h"

namespace dcp {

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec,
                             std::shared_ptr<Engine> engine, int lookahead)
    : stream_(std::move(stream)),
      mask_spec_(mask_spec),
      engine_(std::move(engine)),
      lookahead_(lookahead) {
  DCP_CHECK(engine_ != nullptr);
  DCP_CHECK_GE(lookahead, 0);
  for (int i = 0; i <= lookahead_; ++i) {
    EnqueueOne();
  }
}

DcpDataLoader::DcpDataLoader(BatchStream stream, MaskSpec mask_spec, ClusterSpec cluster,
                             PlannerOptions options, int lookahead, int planner_threads)
    : DcpDataLoader(std::move(stream), mask_spec,
                    std::make_shared<Engine>(cluster,
                                             [&] {
                                               EngineOptions engine_options;
                                               engine_options.planner = options;
                                               engine_options.planner_threads =
                                                   planner_threads;
                                               return engine_options;
                                             }()),
                    lookahead) {}

DcpDataLoader::~DcpDataLoader() {
  // Drain in-flight planning jobs before tearing down the engine pool.
  for (auto& fut : pending_) {
    fut.wait();
  }
}

void DcpDataLoader::EnqueueOne() {
  // Sampling the batch is cheap and must stay deterministic, so it happens on the calling
  // thread; only the planning runs on the engine's pool. The stream's lengths are always
  // positive, so a planning failure here is a configuration bug — surfaced loudly.
  Batch batch = stream_.NextBatch();
  MaskSpec mask_spec = mask_spec_;
  Engine* engine = engine_.get();
  pending_.push_back(
      engine_->pool().Submit([batch = std::move(batch), mask_spec, engine]() mutable {
        StatusOr<PlanHandle> handle = engine->PlanForLoader(batch.seqlens, mask_spec);
        DCP_CHECK(handle.ok()) << "look-ahead planning failed: "
                               << handle.status().ToString();
        PlannedIteration iteration;
        iteration.batch = std::move(batch);
        iteration.handle = std::move(handle).value();
        return iteration;
      }));
}

PlannedIteration DcpDataLoader::Next() {
  DCP_CHECK(!pending_.empty());
  std::future<PlannedIteration> front = std::move(pending_.front());
  pending_.pop_front();
  EnqueueOne();
  return front.get();
}

int DcpDataLoader::PendingPlans() const { return static_cast<int>(pending_.size()); }

}  // namespace dcp
