#include "core/plan_store.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/check.h"
#include "common/crc32.h"

namespace fs = std::filesystem;

namespace dcp {
namespace {

constexpr char kRecordMagic[8] = {'D', 'C', 'P', 'S', 'T', 'O', 'R', 'E'};
constexpr char kBundleMagic[8] = {'D', 'C', 'P', 'B', 'U', 'N', 'D', 'L'};
constexpr uint32_t kRecordVersion = 1;
constexpr uint32_t kBundleVersion = 1;
constexpr uint32_t kSectionPlan = 1;
constexpr size_t kRecordHeaderBytes = 8 + 4 + 16;  // Magic + version + signature.
constexpr size_t kMinRecordBytes = kRecordHeaderBytes + 4;
// A record larger than this is rejected before being read into memory: no real plan
// comes close, and a corrupt length field must not drive a giant allocation. Bundles
// concatenate many records, so they get a proportionally larger cap.
constexpr uint64_t kMaxRecordBytes = uint64_t{1} << 30;
constexpr uint64_t kMaxBundleBytes = uint64_t{1} << 36;
constexpr const char* kRecordSuffix = ".dcpplan";

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t ReadU32At(std::string_view bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(std::string_view bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("plan record: " + what);
}

bool ParseHexSignature(std::string_view stem, PlanSignature* sig) {
  if (stem.size() != 32) {
    return false;
  }
  uint64_t lanes[2] = {0, 0};  // hi, lo — ToHex prints the hi lane first.
  for (size_t i = 0; i < 32; ++i) {
    const char c = stem[i];
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    lanes[i / 16] = (lanes[i / 16] << 4) | digit;
  }
  sig->hi = lanes[0];
  sig->lo = lanes[1];
  return true;
}

StatusOr<std::string> ReadFileBytes(const std::string& path,
                                    uint64_t max_bytes = kMaxRecordBytes) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return Status::NotFound("cannot stat " + path + ": " + ec.message());
  }
  if (size > max_bytes) {
    return Corrupt("file " + path + " is implausibly large (" + std::to_string(size) +
                   " bytes)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
    return Corrupt("short read on " + path);
  }
  return bytes;
}

}  // namespace

std::string PlanStore::EncodeRecord(const PlanSignature& sig, const BatchPlan& plan) {
  const std::string payload = SerializePlanBinary(plan);
  std::string out;
  out.reserve(kMinRecordBytes + 12 + payload.size());
  out.append(kRecordMagic, sizeof(kRecordMagic));
  AppendU32(out, kRecordVersion);
  AppendU64(out, sig.lo);
  AppendU64(out, sig.hi);
  AppendU32(out, kSectionPlan);
  AppendU64(out, payload.size());
  out += payload;
  AppendU32(out, Crc32(out));
  return out;
}

StatusOr<std::pair<PlanSignature, BatchPlan>> PlanStore::DecodeRecord(
    std::string_view bytes) {
  if (bytes.size() < kMinRecordBytes) {
    return Corrupt("truncated record (" + std::to_string(bytes.size()) + " bytes)");
  }
  if (bytes.compare(0, sizeof(kRecordMagic),
                    std::string_view(kRecordMagic, sizeof(kRecordMagic))) != 0) {
    return Corrupt("bad magic");
  }
  const uint32_t version = ReadU32At(bytes, 8);
  if (version != kRecordVersion) {
    return Corrupt("unsupported record version " + std::to_string(version));
  }
  // The checksum covers everything before the 4-byte trailer; verify it before any
  // further byte is interpreted so bit flips and torn writes stop here.
  const size_t body_end = bytes.size() - 4;
  const uint32_t stored_crc = ReadU32At(bytes, body_end);
  const uint32_t computed_crc = Crc32(bytes.substr(0, body_end));
  if (stored_crc != computed_crc) {
    return Corrupt("checksum mismatch");
  }
  PlanSignature sig;
  sig.lo = ReadU64At(bytes, 12);
  sig.hi = ReadU64At(bytes, 20);
  if (sig.IsZero()) {
    return Corrupt("zero signature");
  }
  std::optional<std::string_view> plan_payload;
  size_t pos = kRecordHeaderBytes;
  while (pos < body_end) {
    if (body_end - pos < 12) {
      return Corrupt("truncated section header");
    }
    const uint32_t tag = ReadU32At(bytes, pos);
    const uint64_t length = ReadU64At(bytes, pos + 4);
    pos += 12;
    if (length > body_end - pos) {
      return Corrupt("section length exceeds record");
    }
    if (tag == kSectionPlan) {
      if (plan_payload.has_value()) {
        return Corrupt("duplicate plan section");
      }
      plan_payload = bytes.substr(pos, static_cast<size_t>(length));
    }
    // Unknown tags are skipped: they are CRC-covered, so this is forward compatibility,
    // not a corruption loophole.
    pos += static_cast<size_t>(length);
  }
  if (!plan_payload.has_value()) {
    return Corrupt("missing plan section");
  }
  StatusOr<BatchPlan> plan = DeserializePlanBinary(*plan_payload);
  if (!plan.ok()) {
    return plan.status();
  }
  return std::make_pair(sig, std::move(plan).value());
}

StatusOr<std::unique_ptr<PlanStore>> PlanStore::Open(const std::string& directory,
                                                     metrics::Registry* registry) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create plan store directory " + directory + ": " +
                            ec.message());
  }
  std::unique_ptr<PlanStore> store(new PlanStore(directory));
  if (registry != nullptr) {
    store->hits_ = registry->GetCounter("dcp_store_hits_total", {},
                                        "Plan records loaded and validated");
    store->writes_ = registry->GetCounter("dcp_store_writes_total", {},
                                          "Plan records written (Put + import)");
    store->corrupt_skipped_ = registry->GetCounter(
        "dcp_store_corrupt_skipped_total", {},
        "Records dropped after failing validation");
    store->read_latency_us_ = registry->GetHistogram(
        "dcp_store_read_us", {}, "Record load latency: file read + decode");
    store->write_latency_us_ = registry->GetHistogram(
        "dcp_store_write_us", {}, "Record put latency: encode + atomic write");
  } else {
    store->owned_cells_ = std::make_unique<metrics::Counter[]>(3);
    store->hits_ = &store->owned_cells_[0];
    store->writes_ = &store->owned_cells_[1];
    store->corrupt_skipped_ = &store->owned_cells_[2];
  }
  // Error-code filesystem overloads throughout: a store failure must never throw out
  // of the Engine constructor — the contract is degrade-to-storeless, not crash.
  fs::directory_iterator it(directory, ec);
  if (ec) {
    return Status::Internal("cannot list plan store directory " + directory + ": " +
                            ec.message());
  }
  // An increment error ends the iteration (the iterator becomes end): the index is
  // then merely partial, which only costs warm starts, never correctness.
  for (; it != fs::directory_iterator(); it.increment(ec)) {
    std::error_code file_ec;
    if (!it->is_regular_file(file_ec) || file_ec) {
      continue;
    }
    const fs::path& path = it->path();
    if (path.extension() != kRecordSuffix) {
      continue;
    }
    PlanSignature sig;
    if (ParseHexSignature(path.stem().string(), &sig)) {
      store->index_.emplace(sig, path.filename().string());
    }
  }
  return store;
}

std::string PlanStore::RecordPath(const PlanSignature& sig) const {
  return (fs::path(directory_) / (sig.ToHex() + kRecordSuffix)).string();
}

bool PlanStore::Contains(const PlanSignature& sig) const {
  MutexLock lock(mu_);
  return index_.find(sig) != index_.end();
}

StatusOr<BatchPlan> PlanStore::Load(const PlanSignature& sig) {
  metrics::ScopedLatencyTimer timer(read_latency_us_);
  {
    MutexLock lock(mu_);
    if (index_.find(sig) == index_.end()) {
      return Status::NotFound("no plan record for signature " + sig.ToHex());
    }
  }
  const std::string path = RecordPath(sig);
  StatusOr<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok() && bytes.status().code() == StatusCode::kNotFound) {
    // Transient I/O failure (cannot stat/open): the on-disk record may be perfectly
    // valid, so neither count it as corrupt nor drop it from the index — the next
    // lookup simply retries.
    return bytes.status();
  }
  Status failure = Status::Ok();
  if (!bytes.ok()) {
    failure = bytes.status();
  } else {
    StatusOr<std::pair<PlanSignature, BatchPlan>> record = DecodeRecord(bytes.value());
    if (!record.ok()) {
      failure = record.status();
    } else if (!(record.value().first == sig)) {
      failure = Corrupt("embedded signature " + record.value().first.ToHex() +
                        " does not match key " + sig.ToHex());
    } else {
      MutexLock lock(mu_);
      hits_->Increment();
      return std::move(record).value().second;
    }
  }
  // A record that failed validation drops from the index, so later misses go straight
  // to replanning instead of re-validating known-bad bytes. The file is left on disk
  // for inspection (`dcpctl cache stats` reports it as corrupt).
  MutexLock lock(mu_);
  corrupt_skipped_->Increment();
  index_.erase(sig);
  return failure;
}

Status PlanStore::AtomicWrite(const std::string& path, std::string_view bytes) {
  int64_t serial = 0;
  {
    MutexLock lock(mu_);
    serial = ++temp_counter_;
  }
  // Unique per process (pid) and per call (serial): concurrent writers of the same
  // signature never interleave into one temp file, and rename is atomic on POSIX.
  const std::string temp = path + "." + std::to_string(::getpid()) + "." +
                           std::to_string(serial) + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + temp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code cleanup_ec;
      fs::remove(temp, cleanup_ec);
      return Status::Internal("short write to " + temp);
    }
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    std::error_code cleanup_ec;
    fs::remove(temp, cleanup_ec);
    return Status::Internal("cannot rename " + temp + " to " + path + ": " +
                            ec.message());
  }
  return Status::Ok();
}

Status PlanStore::Put(const PlanSignature& sig, const BatchPlan& plan) {
  if (sig.IsZero()) {
    return Status::InvalidArgument("cannot store a plan under the zero signature");
  }
  metrics::ScopedLatencyTimer timer(write_latency_us_);
  const std::string path = RecordPath(sig);
  DCP_RETURN_IF_ERROR(AtomicWrite(path, EncodeRecord(sig, plan)));
  MutexLock lock(mu_);
  writes_->Increment();
  index_[sig] = fs::path(path).filename().string();
  return Status::Ok();
}

std::vector<PlanSignature> PlanStore::Signatures() const {
  std::vector<PlanSignature> out;
  {
    MutexLock lock(mu_);
    out.reserve(index_.size());
    // dcp-lint: allow(unordered-iteration) — sorted below before anything observes it.
    for (const auto& [sig, file] : index_) {
      out.push_back(sig);
    }
  }
  // Sorted: ExportBundle concatenates records in this order, so bundle bytes must not
  // depend on unordered_map iteration (which varies per process with hashed pointers).
  std::sort(out.begin(), out.end(),
            [](const PlanSignature& a, const PlanSignature& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  return out;
}

PlanStoreStats PlanStore::stats() const {
  MutexLock lock(mu_);
  PlanStoreStats stats;
  stats.entries = static_cast<int64_t>(index_.size());
  stats.hits = hits_->value();
  stats.writes = writes_->value();
  stats.corrupt_skipped = corrupt_skipped_->value();
  return stats;
}

StatusOr<int> PlanStore::ExportBundle(const std::string& file) {
  std::string out;
  out.append(kBundleMagic, sizeof(kBundleMagic));
  AppendU32(out, kBundleVersion);
  const size_t count_pos = out.size();
  AppendU32(out, 0);  // Patched below.
  uint32_t exported = 0;
  for (const PlanSignature& sig : Signatures()) {
    StatusOr<std::string> bytes = ReadFileBytes(RecordPath(sig));
    if (!bytes.ok() || !DecodeRecord(bytes.value()).ok()) {
      MutexLock lock(mu_);
      corrupt_skipped_->Increment();
      continue;
    }
    AppendU64(out, bytes.value().size());
    out += bytes.value();
    ++exported;
  }
  std::string patched_count;
  AppendU32(patched_count, exported);
  out.replace(count_pos, 4, patched_count);
  DCP_RETURN_IF_ERROR(AtomicWrite(file, out));
  return static_cast<int>(exported);
}

StatusOr<int> PlanStore::ImportBundle(const std::string& file) {
  StatusOr<std::string> bytes_or = ReadFileBytes(file, kMaxBundleBytes);
  if (!bytes_or.ok()) {
    return bytes_or.status();
  }
  const std::string& bytes = bytes_or.value();
  if (bytes.size() < 16 ||
      std::string_view(bytes).compare(0, sizeof(kBundleMagic),
                                      std::string_view(kBundleMagic,
                                                       sizeof(kBundleMagic))) != 0) {
    return Corrupt("bad bundle magic");
  }
  const uint32_t version = ReadU32At(bytes, 8);
  if (version != kBundleVersion) {
    return Corrupt("unsupported bundle version " + std::to_string(version));
  }
  const uint32_t count = ReadU32At(bytes, 12);
  size_t pos = 16;
  int imported = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (bytes.size() - pos < 8) {
      return Corrupt("truncated bundle entry header");
    }
    const uint64_t length = ReadU64At(bytes, pos);
    pos += 8;
    if (length > bytes.size() - pos) {
      return Corrupt("bundle entry length exceeds bundle");
    }
    const std::string_view record = std::string_view(bytes).substr(
        pos, static_cast<size_t>(length));
    pos += static_cast<size_t>(length);
    StatusOr<std::pair<PlanSignature, BatchPlan>> decoded = DecodeRecord(record);
    if (!decoded.ok()) {
      MutexLock lock(mu_);
      corrupt_skipped_->Increment();
      continue;
    }
    const PlanSignature& sig = decoded.value().first;
    DCP_RETURN_IF_ERROR(AtomicWrite(RecordPath(sig), record));
    {
      MutexLock lock(mu_);
      writes_->Increment();
      index_[sig] = sig.ToHex() + kRecordSuffix;
    }
    ++imported;
  }
  if (pos != bytes.size()) {
    return Corrupt("trailing garbage after bundle entries");
  }
  return imported;
}

}  // namespace dcp
