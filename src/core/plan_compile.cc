#include "core/plan_compile.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "runtime/cost_model.h"

namespace dcp {
namespace {

// A data-block key on a device: (global chunk id, group), encoded for map ordering.
int64_t Key(int gc, GroupId g, int num_groups) {
  return static_cast<int64_t>(gc) * num_groups + g;
}
int KeyChunk(int64_t key, int num_groups) { return static_cast<int>(key / num_groups); }
GroupId KeyGroup(int64_t key, int num_groups) {
  return static_cast<GroupId>(key % num_groups);
}

struct DeviceBuild {
  std::map<int64_t, int32_t> qside;   // key -> slot in kQ/kO/kAcc/kDO/kDelta/kDQ.
  std::map<int64_t, int32_t> kvside;  // key -> slot in kKV/kDKV.
  int32_t n_local = 0;
  int32_t n_qside = 0;
  int32_t n_kvside = 0;
  // Input fetch plan: [division][src] -> keys first needed in that division.
  std::vector<std::map<DeviceId, std::vector<int64_t>>> q_fetch;
  std::vector<std::map<DeviceId, std::vector<int64_t>>> kv_fetch;
  // Partial results produced here for chunks homed elsewhere, grouped by home device.
  std::map<DeviceId, std::vector<int64_t>> partial_out;  // q-side keys (acc + dq).
  std::map<DeviceId, std::vector<int64_t>> dkv_out;      // kv-side keys.
  // Incoming partials (filled from the other devices' *_out), grouped by source.
  std::map<DeviceId, std::vector<int64_t>> partial_in;
  std::map<DeviceId, std::vector<int64_t>> dkv_in;
  // Staging slot of each incoming partial, parallel to partial_in/dkv_in entries.
  std::map<DeviceId, std::vector<int32_t>> acc_stage;  // in kAcc (also reused for kDQ).
  std::map<DeviceId, std::vector<int32_t>> dkv_stage;  // in kDKV.
  int32_t n_acc_stage = 0;
  int32_t n_dkv_stage = 0;
};

struct TransferDesc {
  enum class Kind { kFwInput, kFwPartial, kBwInput, kBwGrad };
  Kind kind = Kind::kFwInput;
  int32_t id = -1;
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int division = -1;  // Receiving division for input fetches; -1 for epilogue transfers.
  std::vector<TransferBlock> send_blocks;
  std::vector<TransferBlock> recv_blocks;
  Bytes bytes = 0;
};

Bytes DeltaBlockBytes(const BatchLayout& layout, int64_t len) {
  return static_cast<Bytes>(layout.heads_per_group) * len * layout.bytes_per_element;
}

class PlanCompiler {
 public:
  PlanCompiler(const BlockGraph& graph, const PlacementResult& placement,
               const ScheduleResult& schedule, const ClusterSpec& cluster)
      : graph_(graph),
        placement_(placement),
        schedule_(schedule),
        cluster_(cluster),
        layout_(graph.layout),
        num_devices_(static_cast<int>(schedule.divisions.size())),
        t_count_(schedule.num_divisions()) {}

  BatchPlan Compile() {
    BuildSlotMaps();
    BuildTransfers();
    BatchPlan plan;
    plan.layout = layout_;
    plan.chunk_home = placement_.chunk_device;
    plan.devices.resize(static_cast<size_t>(num_devices_));
    for (int d = 0; d < num_devices_; ++d) {
      EmitDevice(d, plan.devices[static_cast<size_t>(d)]);
    }
    FillStats(plan);
    return plan;
  }

 private:
  int64_t ChunkLenOf(int64_t key) const {
    return graph_.chunks[static_cast<size_t>(KeyChunk(key, layout_.num_groups))].length();
  }

  void BuildSlotMaps() {
    builds_.assign(static_cast<size_t>(num_devices_), DeviceBuild{});
    // Local slots: every (chunk, group) of chunks homed on the device, in chunk order.
    for (int gc = 0; gc < graph_.num_chunks(); ++gc) {
      const DeviceId home = placement_.chunk_device[static_cast<size_t>(gc)];
      DeviceBuild& build = builds_[static_cast<size_t>(home)];
      for (GroupId g = 0; g < layout_.num_groups; ++g) {
        const int64_t key = Key(gc, g, layout_.num_groups);
        build.qside[key] = build.n_local;
        build.kvside[key] = build.n_local;
        ++build.n_local;
      }
    }
    for (DeviceBuild& build : builds_) {
      build.n_qside = build.n_local;
      build.n_kvside = build.n_local;
      build.q_fetch.resize(static_cast<size_t>(t_count_));
      build.kv_fetch.resize(static_cast<size_t>(t_count_));
    }
    // Remote slots, replaying the division order (first need wins).
    for (int d = 0; d < num_devices_; ++d) {
      DeviceBuild& build = builds_[static_cast<size_t>(d)];
      for (int t = 0; t < t_count_; ++t) {
        // Forced KV circulation (static ring baselines) enters the fetch plan first, so
        // any tile needing the block afterwards finds it already scheduled.
        if (!schedule_.forced_kv_keys.empty()) {
          for (int64_t kv_key :
               schedule_.forced_kv_keys[static_cast<size_t>(d)][static_cast<size_t>(t)]) {
            const int kv_gc = KeyChunk(kv_key, layout_.num_groups);
            const DeviceId kv_home = placement_.chunk_device[static_cast<size_t>(kv_gc)];
            if (kv_home != d && !build.kvside.contains(kv_key)) {
              build.kvside[kv_key] = build.n_kvside++;
              build.kv_fetch[static_cast<size_t>(t)][kv_home].push_back(kv_key);
              build.dkv_out[kv_home].push_back(kv_key);
            }
          }
        }
        for (int i : schedule_.divisions[static_cast<size_t>(d)][static_cast<size_t>(t)]) {
          const CompBlock& block = graph_.comp_blocks[static_cast<size_t>(i)];
          const int q_gc = layout_.GlobalChunkId(block.seq, block.q_chunk);
          const int kv_gc = layout_.GlobalChunkId(block.seq, block.kv_chunk);
          const int64_t q_key = Key(q_gc, block.group, layout_.num_groups);
          const int64_t kv_key = Key(kv_gc, block.group, layout_.num_groups);
          const DeviceId q_home = placement_.chunk_device[static_cast<size_t>(q_gc)];
          const DeviceId kv_home = placement_.chunk_device[static_cast<size_t>(kv_gc)];
          if (q_home != d && !build.qside.contains(q_key)) {
            build.qside[q_key] = build.n_qside++;
            build.q_fetch[static_cast<size_t>(t)][q_home].push_back(q_key);
            build.partial_out[q_home].push_back(q_key);
          }
          if (kv_home != d && !build.kvside.contains(kv_key)) {
            build.kvside[kv_key] = build.n_kvside++;
            build.kv_fetch[static_cast<size_t>(t)][kv_home].push_back(kv_key);
            build.dkv_out[kv_home].push_back(kv_key);
          }
        }
      }
    }
    // Incoming partials and their staging slots.
    for (int d = 0; d < num_devices_; ++d) {
      const DeviceBuild& src_build = builds_[static_cast<size_t>(d)];
      for (const auto& [home, keys] : src_build.partial_out) {
        DeviceBuild& home_build = builds_[static_cast<size_t>(home)];
        home_build.partial_in[d] = keys;
        auto& stages = home_build.acc_stage[d];
        for (size_t i = 0; i < keys.size(); ++i) {
          stages.push_back(home_build.n_qside + home_build.n_acc_stage++);
        }
      }
      for (const auto& [home, keys] : src_build.dkv_out) {
        DeviceBuild& home_build = builds_[static_cast<size_t>(home)];
        home_build.dkv_in[d] = keys;
        auto& stages = home_build.dkv_stage[d];
        for (size_t i = 0; i < keys.size(); ++i) {
          stages.push_back(home_build.n_kvside + home_build.n_dkv_stage++);
        }
      }
    }
  }

  void BuildTransfers() {
    // Forward input fetches + backward input fetches, one transfer per (src, dst, div).
    for (int d = 0; d < num_devices_; ++d) {
      DeviceBuild& build = builds_[static_cast<size_t>(d)];
      for (int t = 0; t < t_count_; ++t) {
        // Union of source devices contributing to division t.
        std::map<DeviceId, std::pair<std::vector<int64_t>, std::vector<int64_t>>> by_src;
        for (const auto& [src, keys] : build.q_fetch[static_cast<size_t>(t)]) {
          by_src[src].first = keys;
        }
        for (const auto& [src, keys] : build.kv_fetch[static_cast<size_t>(t)]) {
          by_src[src].second = keys;
        }
        for (const auto& [src, keys] : by_src) {
          MakeInputTransfers(src, d, t, keys.first, keys.second);
        }
      }
      // Epilogue transfers.
      for (const auto& [home, keys] : build.partial_out) {
        MakeFwPartialTransfer(d, home, keys);
      }
    }
    for (int d = 0; d < num_devices_; ++d) {
      DeviceBuild& build = builds_[static_cast<size_t>(d)];
      // Backward gradient returns: dq (q-side) + dkv (kv-side) bundled per destination.
      std::map<DeviceId, std::pair<std::vector<int64_t>, std::vector<int64_t>>> by_home;
      for (const auto& [home, keys] : build.partial_out) {
        by_home[home].first = keys;
      }
      for (const auto& [home, keys] : build.dkv_out) {
        by_home[home].second = keys;
      }
      for (const auto& [home, keys] : by_home) {
        MakeBwGradTransfer(d, home, keys.first, keys.second);
      }
    }
  }

  void MakeInputTransfers(DeviceId src, DeviceId dst, int division,
                          const std::vector<int64_t>& q_keys,
                          const std::vector<int64_t>& kv_keys) {
    const DeviceBuild& src_build = builds_[static_cast<size_t>(src)];
    const DeviceBuild& dst_build = builds_[static_cast<size_t>(dst)];
    // Forward: Q and KV blocks.
    TransferDesc fw;
    fw.kind = TransferDesc::Kind::kFwInput;
    fw.id = next_transfer_id_++;
    fw.src = src;
    fw.dst = dst;
    fw.division = division;
    // Backward: Q, dO, delta, stats (acc) for q-side keys; KV for kv-side keys.
    TransferDesc bw;
    bw.kind = TransferDesc::Kind::kBwInput;
    bw.id = next_transfer_id_++;
    bw.src = src;
    bw.dst = dst;
    bw.division = division;
    for (int64_t key : q_keys) {
      const int64_t len = ChunkLenOf(key);
      const int32_t s_slot = src_build.qside.at(key);
      const int32_t d_slot = dst_build.qside.at(key);
      const Bytes q_bytes = layout_.QBlockBytes(len);
      fw.send_blocks.push_back({{BufKind::kQ, s_slot}, q_bytes, len});
      fw.recv_blocks.push_back({{BufKind::kQ, d_slot}, q_bytes, len});
      fw.bytes += q_bytes;
      const Bytes do_bytes = layout_.OBlockBytes(len);
      const Bytes delta_bytes = DeltaBlockBytes(layout_, len);
      const Bytes acc_bytes = layout_.AccBlockBytes(len);
      bw.send_blocks.push_back({{BufKind::kQ, s_slot}, q_bytes, len});
      bw.recv_blocks.push_back({{BufKind::kQ, d_slot}, q_bytes, len});
      bw.send_blocks.push_back({{BufKind::kDO, s_slot}, do_bytes, len});
      bw.recv_blocks.push_back({{BufKind::kDO, d_slot}, do_bytes, len});
      bw.send_blocks.push_back({{BufKind::kDelta, s_slot}, delta_bytes, len});
      bw.recv_blocks.push_back({{BufKind::kDelta, d_slot}, delta_bytes, len});
      bw.send_blocks.push_back({{BufKind::kAcc, s_slot}, acc_bytes, len});
      bw.recv_blocks.push_back({{BufKind::kAcc, d_slot}, acc_bytes, len});
      bw.bytes += q_bytes + do_bytes + delta_bytes + acc_bytes;
    }
    for (int64_t key : kv_keys) {
      const int64_t len = ChunkLenOf(key);
      const int32_t s_slot = src_build.kvside.at(key);
      const int32_t d_slot = dst_build.kvside.at(key);
      const Bytes kv_bytes = layout_.KvBlockBytes(len);
      fw.send_blocks.push_back({{BufKind::kKV, s_slot}, kv_bytes, len});
      fw.recv_blocks.push_back({{BufKind::kKV, d_slot}, kv_bytes, len});
      fw.bytes += kv_bytes;
      bw.send_blocks.push_back({{BufKind::kKV, s_slot}, kv_bytes, len});
      bw.recv_blocks.push_back({{BufKind::kKV, d_slot}, kv_bytes, len});
      bw.bytes += kv_bytes;
    }
    transfers_.push_back(std::move(fw));
    transfers_.push_back(std::move(bw));
  }

  void MakeFwPartialTransfer(DeviceId src, DeviceId home,
                             const std::vector<int64_t>& keys) {
    const DeviceBuild& src_build = builds_[static_cast<size_t>(src)];
    const DeviceBuild& home_build = builds_[static_cast<size_t>(home)];
    const auto& stages = home_build.acc_stage.at(src);
    TransferDesc t;
    t.kind = TransferDesc::Kind::kFwPartial;
    t.id = next_transfer_id_++;
    t.src = src;
    t.dst = home;
    for (size_t i = 0; i < keys.size(); ++i) {
      const int64_t len = ChunkLenOf(keys[i]);
      const Bytes bytes = layout_.AccBlockBytes(len);
      t.send_blocks.push_back({{BufKind::kAcc, src_build.qside.at(keys[i])}, bytes, len});
      t.recv_blocks.push_back({{BufKind::kAcc, stages[i]}, bytes, len});
      t.bytes += bytes;
    }
    transfers_.push_back(std::move(t));
  }

  void MakeBwGradTransfer(DeviceId src, DeviceId home, const std::vector<int64_t>& dq_keys,
                          const std::vector<int64_t>& dkv_keys) {
    const DeviceBuild& src_build = builds_[static_cast<size_t>(src)];
    const DeviceBuild& home_build = builds_[static_cast<size_t>(home)];
    TransferDesc t;
    t.kind = TransferDesc::Kind::kBwGrad;
    t.id = next_transfer_id_++;
    t.src = src;
    t.dst = home;
    if (!dq_keys.empty()) {
      const auto& stages = home_build.acc_stage.at(src);  // Same indices reused for kDQ.
      for (size_t i = 0; i < dq_keys.size(); ++i) {
        const int64_t len = ChunkLenOf(dq_keys[i]);
        const Bytes bytes = layout_.QBlockBytes(len);
        t.send_blocks.push_back(
            {{BufKind::kDQ, src_build.qside.at(dq_keys[i])}, bytes, len});
        t.recv_blocks.push_back({{BufKind::kDQ, stages[i]}, bytes, len});
        t.bytes += bytes;
      }
    }
    if (!dkv_keys.empty()) {
      const auto& stages = home_build.dkv_stage.at(src);
      for (size_t i = 0; i < dkv_keys.size(); ++i) {
        const int64_t len = ChunkLenOf(dkv_keys[i]);
        const Bytes bytes = layout_.KvBlockBytes(len);
        t.send_blocks.push_back(
            {{BufKind::kDKV, src_build.kvside.at(dkv_keys[i])}, bytes, len});
        t.recv_blocks.push_back({{BufKind::kDKV, stages[i]}, bytes, len});
        t.bytes += bytes;
      }
    }
    transfers_.push_back(std::move(t));
  }

  Instruction MakeCommLaunch(const TransferDesc& t, bool send) const {
    Instruction instr;
    instr.kind = InstrKind::kCommLaunch;
    instr.transfer_id = t.id;
    instr.peer = send ? t.dst : t.src;
    instr.is_send = send;
    instr.blocks = send ? t.send_blocks : t.recv_blocks;
    instr.comm_bytes = t.bytes;
    return instr;
  }

  Instruction MakeCommWait(const TransferDesc& t) const {
    Instruction instr;
    instr.kind = InstrKind::kCommWait;
    instr.transfer_id = t.id;
    return instr;
  }

  Instruction MakeAttention(DeviceId d, const std::vector<int>& block_ids,
                            bool backward) const {
    const DeviceBuild& build = builds_[static_cast<size_t>(d)];
    Instruction instr;
    instr.kind = InstrKind::kBlockwiseAttention;
    instr.backward = backward;
    for (int i : block_ids) {
      const CompBlock& block = graph_.comp_blocks[static_cast<size_t>(i)];
      const int q_gc = layout_.GlobalChunkId(block.seq, block.q_chunk);
      const int kv_gc = layout_.GlobalChunkId(block.seq, block.kv_chunk);
      const int64_t q_key = Key(q_gc, block.group, layout_.num_groups);
      const int64_t kv_key = Key(kv_gc, block.group, layout_.num_groups);
      const int32_t q_slot = build.qside.at(q_key);
      const int32_t kv_slot = build.kvside.at(kv_key);
      AttentionWorkItem item;
      item.q = {BufKind::kQ, q_slot};
      item.kv = {BufKind::kKV, kv_slot};
      item.acc = {BufKind::kAcc, q_slot};
      item.seq = block.seq;
      item.group = block.group;
      item.q_begin = layout_.ChunkBegin(block.seq, block.q_chunk);
      item.q_end = layout_.ChunkEnd(block.seq, block.q_chunk);
      item.kv_begin = layout_.ChunkBegin(block.seq, block.kv_chunk);
      item.kv_end = layout_.ChunkEnd(block.seq, block.kv_chunk);
      item.full = block.full;
      if (backward) {
        item.dout = {BufKind::kDO, q_slot};
        item.delta = {BufKind::kDelta, q_slot};
        item.dq = {BufKind::kDQ, q_slot};
        item.dkv = {BufKind::kDKV, kv_slot};
      }
      instr.attn_items.push_back(item);
      instr.flops += backward ? block.flops * kBackwardFlopsFactor : block.flops;
      // Memory traffic of the tile: every tile re-reads its Q and KV blocks and updates
      // the output accumulator (backward also reads dO and writes dQ/dKV — roughly 2x).
      // This is the per-step kernel overhead the paper's §7.5 decomposition observes.
      const int64_t q_len = item.q_end - item.q_begin;
      const int64_t kv_len = item.kv_end - item.kv_begin;
      const Bytes tile_bytes = layout_.QBlockBytes(q_len) + layout_.KvBlockBytes(kv_len) +
                               2 * layout_.OBlockBytes(q_len);
      instr.mem_bytes += backward ? 2 * tile_bytes : tile_bytes;
    }
    return instr;
  }

  // Emits the pipelined division loop shared by forward and backward.
  void EmitPipeline(DeviceId d, bool backward, std::vector<Instruction>& out) const {
    const auto transfer_kind =
        backward ? TransferDesc::Kind::kBwInput : TransferDesc::Kind::kFwInput;

    // Transfers indexed by (receiver division) for launches/waits on this device.
    std::vector<std::vector<const TransferDesc*>> recv_by_div(
        static_cast<size_t>(t_count_));
    std::vector<std::vector<const TransferDesc*>> send_by_div(
        static_cast<size_t>(t_count_));
    for (const TransferDesc& t : transfers_) {
      if (t.kind != transfer_kind) {
        continue;
      }
      if (t.dst == d) {
        recv_by_div[static_cast<size_t>(t.division)].push_back(&t);
      }
      if (t.src == d) {
        send_by_div[static_cast<size_t>(t.division)].push_back(&t);
      }
    }

    auto emit_launches = [&](int t) {
      for (const TransferDesc* desc : send_by_div[static_cast<size_t>(t)]) {
        out.push_back(MakeCommLaunch(*desc, /*send=*/true));
      }
      for (const TransferDesc* desc : recv_by_div[static_cast<size_t>(t)]) {
        out.push_back(MakeCommLaunch(*desc, /*send=*/false));
      }
    };
    auto emit_waits = [&](int t) {
      for (const TransferDesc* desc : recv_by_div[static_cast<size_t>(t)]) {
        out.push_back(MakeCommWait(*desc));
      }
    };

    // Division 0 fetches (only present when T == 1): launch + wait up front.
    emit_launches(0);
    emit_waits(0);
    for (int t = 0; t < t_count_; ++t) {
      if (t + 1 < t_count_) {
        emit_launches(t + 1);
      }
      const auto& block_ids =
          schedule_.divisions[static_cast<size_t>(d)][static_cast<size_t>(t)];
      if (!block_ids.empty()) {
        out.push_back(MakeAttention(d, block_ids, backward));
      }
      if (t + 1 < t_count_) {
        emit_waits(t + 1);
      }
    }
  }

  void EmitDevice(DeviceId d, DevicePlan& plan) const {
    const DeviceBuild& build = builds_[static_cast<size_t>(d)];
    plan.num_slots[static_cast<size_t>(BufKind::kQ)] = build.n_qside;
    plan.num_slots[static_cast<size_t>(BufKind::kKV)] = build.n_kvside;
    plan.num_slots[static_cast<size_t>(BufKind::kO)] = build.n_local;
    plan.num_slots[static_cast<size_t>(BufKind::kAcc)] = build.n_qside + build.n_acc_stage;
    plan.num_slots[static_cast<size_t>(BufKind::kDO)] = build.n_qside;
    plan.num_slots[static_cast<size_t>(BufKind::kDelta)] = build.n_qside;
    plan.num_slots[static_cast<size_t>(BufKind::kDQ)] = build.n_qside + build.n_acc_stage;
    plan.num_slots[static_cast<size_t>(BufKind::kDKV)] =
        build.n_kvside + build.n_dkv_stage;

    // Local chunk table (slot == local index for every q-side buffer kind).
    for (const auto& [key, slot] : build.qside) {
      if (slot >= build.n_local) {
        continue;
      }
      const int gc = KeyChunk(key, layout_.num_groups);
      const TokenChunk& chunk = graph_.chunks[static_cast<size_t>(gc)];
      LocalChunk local;
      local.seq = chunk.seq;
      local.chunk = chunk.chunk;
      local.group = KeyGroup(key, layout_.num_groups);
      local.q_slot = slot;
      local.kv_slot = build.kvside.at(key);
      plan.local_chunks.push_back(local);
    }

    EmitForward(d, plan.instructions);
    EmitBackward(d, plan.backward_instructions);
  }

  void EmitForward(DeviceId d, std::vector<Instruction>& out) const {
    const DeviceBuild& build = builds_[static_cast<size_t>(d)];
    EmitPipeline(d, /*backward=*/false, out);

    // Epilogue: ship partial accumulators home, merge, finalize.
    for (const TransferDesc& t : transfers_) {
      if (t.kind != TransferDesc::Kind::kFwPartial) {
        continue;
      }
      if (t.src == d) {
        out.push_back(MakeCommLaunch(t, /*send=*/true));
      }
      if (t.dst == d) {
        out.push_back(MakeCommLaunch(t, /*send=*/false));
      }
    }
    for (const TransferDesc& t : transfers_) {
      if (t.kind != TransferDesc::Kind::kFwPartial || t.dst != d) {
        continue;
      }
      out.push_back(MakeCommWait(t));
      Instruction merge;
      merge.kind = InstrKind::kBlockwiseReduction;
      const auto& keys = build.partial_in.at(t.src);
      const auto& stages = build.acc_stage.at(t.src);
      for (size_t i = 0; i < keys.size(); ++i) {
        const int64_t len = ChunkLenOf(keys[i]);
        ReduceItem item;
        item.mode = ReduceMode::kMergeSoftmax;
        item.dst = {BufKind::kAcc, build.qside.at(keys[i])};
        item.src0 = {BufKind::kAcc, stages[i]};
        item.token_count = len;
        merge.reduce_items.push_back(item);
        merge.mem_bytes += 2 * layout_.AccBlockBytes(len);
      }
      out.push_back(std::move(merge));
    }
    // Finalize all local outputs.
    Instruction finalize;
    finalize.kind = InstrKind::kBlockwiseReduction;
    for (const auto& [key, slot] : build.qside) {
      if (slot >= build.n_local) {
        continue;
      }
      const int64_t len = ChunkLenOf(key);
      ReduceItem item;
      item.mode = ReduceMode::kFinalize;
      item.dst = {BufKind::kO, slot};
      item.src0 = {BufKind::kAcc, slot};
      item.token_count = len;
      finalize.reduce_items.push_back(item);
      finalize.mem_bytes += layout_.OBlockBytes(len) + layout_.AccBlockBytes(len);
    }
    if (!finalize.reduce_items.empty()) {
      out.push_back(std::move(finalize));
    }
  }

  void EmitBackward(DeviceId d, std::vector<Instruction>& out) const {
    const DeviceBuild& build = builds_[static_cast<size_t>(d)];
    // Delta for every local chunk (needed by local tiles and by remote fetchers).
    Instruction delta;
    delta.kind = InstrKind::kBlockwiseReduction;
    for (const auto& [key, slot] : build.qside) {
      if (slot >= build.n_local) {
        continue;
      }
      const int64_t len = ChunkLenOf(key);
      ReduceItem item;
      item.mode = ReduceMode::kComputeDelta;
      item.dst = {BufKind::kDelta, slot};
      item.src0 = {BufKind::kDO, slot};
      item.src1 = {BufKind::kO, slot};
      item.token_count = len;
      delta.reduce_items.push_back(item);
      delta.mem_bytes += 2 * layout_.OBlockBytes(len);
    }
    if (!delta.reduce_items.empty()) {
      out.push_back(std::move(delta));
    }

    EmitPipeline(d, /*backward=*/true, out);

    // Epilogue: return dQ/dKV partials, sum at home.
    for (const TransferDesc& t : transfers_) {
      if (t.kind != TransferDesc::Kind::kBwGrad) {
        continue;
      }
      if (t.src == d) {
        out.push_back(MakeCommLaunch(t, /*send=*/true));
      }
      if (t.dst == d) {
        out.push_back(MakeCommLaunch(t, /*send=*/false));
      }
    }
    for (const TransferDesc& t : transfers_) {
      if (t.kind != TransferDesc::Kind::kBwGrad || t.dst != d) {
        continue;
      }
      out.push_back(MakeCommWait(t));
      Instruction sum;
      sum.kind = InstrKind::kBlockwiseReduction;
      if (auto it = build.partial_in.find(t.src); it != build.partial_in.end()) {
        const auto& stages = build.acc_stage.at(t.src);
        for (size_t i = 0; i < it->second.size(); ++i) {
          const int64_t len = ChunkLenOf(it->second[i]);
          ReduceItem item;
          item.mode = ReduceMode::kSum;
          item.dst = {BufKind::kDQ, build.qside.at(it->second[i])};
          item.src0 = {BufKind::kDQ, stages[i]};
          item.token_count = len;
          sum.reduce_items.push_back(item);
          sum.mem_bytes += 2 * layout_.QBlockBytes(len);
        }
      }
      if (auto it = build.dkv_in.find(t.src); it != build.dkv_in.end()) {
        const auto& stages = build.dkv_stage.at(t.src);
        for (size_t i = 0; i < it->second.size(); ++i) {
          const int64_t len = ChunkLenOf(it->second[i]);
          ReduceItem item;
          item.mode = ReduceMode::kSum;
          item.dst = {BufKind::kDKV, build.kvside.at(it->second[i])};
          item.src0 = {BufKind::kDKV, stages[i]};
          item.token_count = len;
          sum.reduce_items.push_back(item);
          sum.mem_bytes += 2 * layout_.KvBlockBytes(len);
        }
      }
      out.push_back(std::move(sum));
    }
  }

  void FillStats(BatchPlan& plan) const {
    PlanStats& stats = plan.stats;
    std::vector<Bytes> per_device(static_cast<size_t>(num_devices_), 0);
    for (const TransferDesc& t : transfers_) {
      if (t.kind != TransferDesc::Kind::kFwInput &&
          t.kind != TransferDesc::Kind::kFwPartial) {
        continue;
      }
      stats.total_comm_bytes += t.bytes;
      if (!cluster_.SameNode(t.src, t.dst)) {
        stats.inter_node_comm_bytes += t.bytes;
      }
      per_device[static_cast<size_t>(t.src)] += t.bytes;
      per_device[static_cast<size_t>(t.dst)] += t.bytes;
    }
    for (Bytes bytes : per_device) {
      stats.max_device_comm_bytes = std::max(stats.max_device_comm_bytes, bytes);
    }
    stats.total_flops = graph_.TotalFlops();
    for (int d = 0; d < num_devices_; ++d) {
      Flops device_flops = 0.0;
      for (const auto& division : schedule_.divisions[static_cast<size_t>(d)]) {
        for (int i : division) {
          device_flops += graph_.comp_blocks[static_cast<size_t>(i)].flops;
        }
      }
      stats.max_device_flops = std::max(stats.max_device_flops, device_flops);
    }
    // Owned-data balance: the memory proxy the placement constrains.
    std::vector<Bytes> owned(static_cast<size_t>(num_devices_), 0);
    for (int gc = 0; gc < graph_.num_chunks(); ++gc) {
      owned[static_cast<size_t>(placement_.chunk_device[static_cast<size_t>(gc)])] +=
          graph_.chunks[static_cast<size_t>(gc)].bytes;
    }
    stats.max_device_owned_bytes = owned.empty() ? 0 : owned[0];
    stats.min_device_owned_bytes = stats.max_device_owned_bytes;
    for (Bytes bytes : owned) {
      stats.max_device_owned_bytes = std::max(stats.max_device_owned_bytes, bytes);
      stats.min_device_owned_bytes = std::min(stats.min_device_owned_bytes, bytes);
    }
    stats.partition_cost = 0.0;  // Filled by the planner.
  }

  const BlockGraph& graph_;
  const PlacementResult& placement_;
  const ScheduleResult& schedule_;
  const ClusterSpec& cluster_;
  const BatchLayout& layout_;
  const int num_devices_;
  const int t_count_;

  std::vector<DeviceBuild> builds_;
  std::vector<TransferDesc> transfers_;
  int32_t next_transfer_id_ = 0;
};

}  // namespace

BatchPlan CompilePlan(const BlockGraph& graph, const PlacementResult& placement,
                      const ScheduleResult& schedule, const ClusterSpec& cluster) {
  PlanCompiler compiler(graph, placement, schedule, cluster);
  return compiler.Compile();
}

}  // namespace dcp
