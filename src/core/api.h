// User-facing facade mirroring the paper's Listing 2:
//
//   DcpDataLoader loader(stream, mask_spec, cluster, options);   // dataset + mask_fn
//   DcpExecutor executor;                                        // shared across layers
//   for (...) {
//     PlannedIteration it = loader.Next();
//     executor.Prepare(it.plan, it.masks);                       // set plan, make buffers
//     auto out = DcpAttention::Forward(executor, inputs);        // inside the model
//     auto grads = DcpAttention::Backward(executor, dout);
//   }
#ifndef DCP_CORE_API_H_
#define DCP_CORE_API_H_

#include <memory>
#include <vector>

#include "core/dataloader.h"
#include "runtime/executor.h"

namespace dcp {

// Holds the current iteration's execution plan and device buffers; the model calls
// attention through it (one instance shared by all layers, as in the paper).
class DcpExecutor {
 public:
  DcpExecutor() = default;

  // Installs the plan for the upcoming iteration and (re)creates block buffers.
  void Prepare(const BatchPlan& plan, std::vector<SequenceMask> masks);

  bool ready() const { return exec_ != nullptr; }
  const BatchPlan& plan() const;
  NumericExecutor& numeric();

 private:
  BatchPlan plan_;
  std::vector<SequenceMask> masks_;
  std::unique_ptr<NumericExecutor> exec_;
};

// The drop-in attention op (paper Listing 2, DCPAttn.apply).
class DcpAttention {
 public:
  // inputs[s] holds Q/K/V of sequence s; returns O per sequence.
  static std::vector<Tensor> Forward(DcpExecutor& executor,
                                     const std::vector<SeqTensors>& inputs);
  // douts[s] is dL/dO of sequence s; returns input gradients per sequence.
  static std::vector<SeqGrads> Backward(DcpExecutor& executor,
                                        const std::vector<Tensor>& douts);
};

}  // namespace dcp

#endif  // DCP_CORE_API_H_
