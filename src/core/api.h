// User-facing facade mirroring the paper's Listing 2, now as thin shims over the
// session-scoped dcp::Engine (core/engine.h), which owns the planner configuration, the
// look-ahead thread pool, and the signature-keyed compiled-plan cache:
//
//   auto engine = std::make_shared<Engine>(cluster, engine_options);
//   DcpDataLoader loader(stream, mask_spec, engine);   // dataset + mask_fn
//   DcpExecutor executor;                              // shared across layers
//   for (...) {
//     PlannedIteration it = loader.Next();             // repeated batches hit the cache
//     executor.Prepare(it.handle);                     // same signature: buffers reused
//     auto out = DcpAttention::Forward(executor, inputs);   // inside the model
//     auto grads = DcpAttention::Backward(executor, dout);
//   }
//
// The paper-verbatim spellings still work: the DcpDataLoader(stream, mask_spec, cluster,
// options) constructor builds an internal Engine, and Prepare(plan, masks) wraps its
// arguments in an unsigned one-off handle (it always reallocates buffers — only
// signature-carrying handles from the Engine get the incremental path).
#ifndef DCP_CORE_API_H_
#define DCP_CORE_API_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dataloader.h"
#include "core/engine.h"
#include "runtime/executor.h"

namespace dcp {

// Holds the current iteration's execution plan and device buffers; the model calls
// attention through it (one instance shared by all layers, as in the paper).
class DcpExecutor {
 public:
  DcpExecutor() = default;

  // Installs a compiled plan for the upcoming iteration. When the handle's signature
  // matches the installed one (a plan-cache hit on a repeated batch), the device
  // buffers are kept and the executor is rebound in place instead of reallocated.
  void Prepare(const PlanHandle& handle);

  // Paper-verbatim spelling: copies the plan/masks into a one-off unsigned handle.
  void Prepare(const BatchPlan& plan, std::vector<SequenceMask> masks);

  bool ready() const { return exec_ != nullptr; }
  const BatchPlan& plan() const;
  NumericExecutor& numeric();

  // Observability for tests and benches: how many Prepare calls reused the installed
  // device buffers instead of reallocating them.
  int64_t prepare_count() const { return prepare_count_; }
  int64_t buffer_reuse_count() const { return buffer_reuse_count_; }

 private:
  PlanHandle installed_;
  std::unique_ptr<NumericExecutor> exec_;
  int64_t prepare_count_ = 0;
  int64_t buffer_reuse_count_ = 0;
};

// The drop-in attention op (paper Listing 2, DCPAttn.apply).
class DcpAttention {
 public:
  // inputs[s] holds Q/K/V of sequence s; returns O per sequence.
  static std::vector<Tensor> Forward(DcpExecutor& executor,
                                     const std::vector<SeqTensors>& inputs);
  // douts[s] is dL/dO of sequence s; returns input gradients per sequence.
  static std::vector<SeqGrads> Backward(DcpExecutor& executor,
                                        const std::vector<Tensor>& douts);
};

}  // namespace dcp

#endif  // DCP_CORE_API_H_
