#include "core/plan_signature.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace dcp {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Group tags: every logical field group starts with one so that streams with the same
// payload bytes but different structure cannot collide by construction of the stream.
enum FieldTag : uint64_t {
  kTagVersion = 0xA0,
  kTagSeqlens,
  kTagMask,
  kTagCluster,
  kTagPlanner,
  kTagPartitionKnobs,
  kTagBlockSize,
  kTagTuneCandidates,
};

constexpr uint64_t kSignatureVersion = 1;

void HashMask(PlanSignatureBuilder& b, const MaskSpec& spec) {
  b.Add(kTagMask);
  b.Add(static_cast<uint64_t>(spec.kind));
  b.AddSigned(spec.sink_tokens);
  b.AddSigned(spec.window_tokens);
  b.AddSigned(spec.icl_block_tokens);
  b.AddSigned(spec.window_blocks);
  b.AddSigned(spec.sink_blocks);
  b.AddSigned(spec.test_blocks);
  b.AddSigned(spec.num_answers);
  b.AddDouble(spec.answer_fraction);
}

void HashCluster(PlanSignatureBuilder& b, const ClusterSpec& cluster) {
  // Topology shapes the plan; the cost parameters shape scheduling tie-breaks and the
  // simulator pricing AutoTune ranks candidates with, so all of them are identity.
  b.Add(kTagCluster);
  b.AddSigned(cluster.num_nodes);
  b.AddSigned(cluster.devices_per_node);
  b.AddDouble(cluster.device_tflops);
  b.AddDouble(cluster.dense_tflops);
  b.AddDouble(cluster.intra_node_gbps);
  b.AddDouble(cluster.node_nic_gbps);
  b.AddDouble(cluster.intra_latency_us);
  b.AddDouble(cluster.inter_latency_us);
  b.AddDouble(cluster.hbm_gbps);
  b.AddDouble(cluster.kernel_launch_us);
  b.AddDouble(cluster.comm_launch_us);
  b.AddDouble(cluster.attn_step_overhead_us);
  b.AddDouble(cluster.attn_bw_step_overhead_us);
}

// Everything in PlannerOptions except the block size, which the two public entry points
// treat differently (fixed value vs. candidate search).
void HashPlannerSansBlock(PlanSignatureBuilder& b, const PlannerOptions& options) {
  b.Add(kTagPlanner);
  b.AddSigned(options.num_groups);
  b.AddSigned(options.heads_per_group);
  b.AddSigned(options.head_dim);
  b.AddSigned(options.bytes_per_element);
  b.AddSigned(options.divisions);
  b.AddDouble(options.eps_inter);
  b.AddDouble(options.eps_intra);
  b.AddDouble(options.eps_data);
  b.AddBool(options.hierarchical);
  b.AddBool(options.use_multilevel);
  b.Add(options.seed);
  b.Add(kTagPartitionKnobs);
  b.AddSigned(options.partition_vcycles);
  b.AddSigned(options.partition_vcycle_iterations);
  b.AddSigned(options.partition_refinement_passes);
  b.AddSigned(options.partition_initial_tries);
  b.AddSigned(options.partition_coarsen_until_per_part);
  b.AddSigned(options.partition_coarsening_grain);
}

PlanSignatureBuilder HashCommon(std::span<const int64_t> seqlens,
                                const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                const PlannerOptions& options) {
  PlanSignatureBuilder b;
  b.Add(kTagVersion);
  b.Add(kSignatureVersion);
  b.Add(kTagSeqlens);
  b.AddSpan(seqlens);
  HashMask(b, mask_spec);
  HashCluster(b, cluster);
  HashPlannerSansBlock(b, options);
  return b;
}

}  // namespace

void PlanSignatureBuilder::Add(uint64_t value) {
  lo_ = Mix64(lo_ ^ value);
  hi_ = Mix64(hi_ + (value * 0xff51afd7ed558ccdULL));
}

void PlanSignatureBuilder::AddDouble(double value) {
  // Semantically identical configs must hash identically, so canonicalize the bit
  // patterns NaN payloads and signed zero would otherwise leak into the digest: every
  // NaN (any payload, either sign) folds to the canonical quiet NaN, and -0.0 folds to
  // 0.0. Without this, a NaN cost-model field makes equal requests miss the plan cache.
  uint64_t bits;
  if (std::isnan(value)) {
    bits = 0x7ff8000000000000ULL;
  } else {
    if (value == 0.0) {
      value = 0.0;
    }
    bits = std::bit_cast<uint64_t>(value);
  }
  Add(bits);
}

void PlanSignatureBuilder::AddSpan(std::span<const int64_t> values) {
  Add(static_cast<uint64_t>(values.size()));
  for (int64_t v : values) {
    AddSigned(v);
  }
}

PlanSignature PlanSignatureBuilder::Finish() const {
  // One more mix round so trailing fields avalanche into both lanes, and keep the
  // all-zero digest reserved as the "no signature" sentinel.
  PlanSignature sig;
  sig.lo = Mix64(lo_ ^ hi_);
  sig.hi = Mix64(hi_ + 0x2545f4914f6cdd1dULL);
  if (sig.IsZero()) {
    sig.lo = 1;
  }
  return sig;
}

std::string PlanSignature::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

PlanSignature ComputePlanSignature(std::span<const int64_t> seqlens,
                                   const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                   const PlannerOptions& options) {
  PlanSignatureBuilder b = HashCommon(seqlens, mask_spec, cluster, options);
  b.Add(kTagBlockSize);
  b.AddSigned(options.block_size);
  return b.Finish();
}

PlanSignature ComputeTuneSignature(std::span<const int64_t> seqlens,
                                   const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                   const PlannerOptions& options,
                                   const std::vector<int64_t>& block_sizes) {
  PlanSignatureBuilder b = HashCommon(seqlens, mask_spec, cluster, options);
  b.Add(kTagTuneCandidates);
  b.AddSpan(block_sizes);
  return b.Finish();
}

}  // namespace dcp
