#include "core/block_gen.h"

#include "common/check.h"
#include "runtime/cost_model.h"

namespace dcp {

Flops BlockGraph::TotalFlops() const {
  Flops total = 0.0;
  for (const CompBlock& block : comp_blocks) {
    total += block.flops;
  }
  return total;
}

BlockGraph GenerateBlocks(const BatchLayout& layout,
                          const std::vector<SequenceMask>& masks) {
  DCP_CHECK_EQ(static_cast<int>(masks.size()), layout.num_sequences());
  BlockGraph graph;
  graph.layout = layout;

  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    DCP_CHECK_EQ(masks[static_cast<size_t>(s)].length(),
                 layout.seqlens[static_cast<size_t>(s)]);
    for (ChunkId c = 0; c < layout.NumChunks(s); ++c) {
      TokenChunk chunk;
      chunk.seq = s;
      chunk.chunk = c;
      chunk.begin = layout.ChunkBegin(s, c);
      chunk.end = layout.ChunkEnd(s, c);
      chunk.bytes = layout.TokenChunkBytes(chunk.length());
      graph.chunks.push_back(chunk);
    }
  }

  const Flops pair_flops = AttentionPairFlops(layout.head_dim) * layout.heads_per_group;
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    const SequenceMask& mask = masks[static_cast<size_t>(s)];
    const int num_chunks = layout.NumChunks(s);
    for (ChunkId qc = 0; qc < num_chunks; ++qc) {
      const int64_t qb = layout.ChunkBegin(s, qc);
      const int64_t qe = layout.ChunkEnd(s, qc);
      // All masks are causal at heart: kv chunks beyond the q chunk are always empty, so
      // the scan per q chunk stops there (keeps generation O(tiles), not O(chunks^2)).
      for (ChunkId kc = 0; kc <= qc; ++kc) {
        const int64_t kb = layout.ChunkBegin(s, kc);
        const int64_t ke = layout.ChunkEnd(s, kc);
        int64_t pairs = 0;
        const BlockCoverage coverage = mask.Classify(qb, qe, kb, ke, &pairs);
        if (coverage == BlockCoverage::kEmpty) {
          continue;
        }
        for (GroupId g = 0; g < layout.num_groups; ++g) {
          CompBlock block;
          block.seq = s;
          block.group = g;
          block.q_chunk = qc;
          block.kv_chunk = kc;
          block.pairs = pairs;
          block.flops = static_cast<Flops>(pairs) * pair_flops;
          block.full = coverage == BlockCoverage::kFull;
          graph.comp_blocks.push_back(block);
        }
      }
    }
  }
  return graph;
}

}  // namespace dcp
