// Canonical 128-bit fingerprints over everything that determines a compiled plan:
// sequence lengths, mask-spec parameters, block size, cluster topology + cost-model
// parameters, and every planner knob. Two requests with equal signatures produce
// bit-identical plans (the planner is deterministic for a fixed seed), so the Engine's
// compiled-plan cache and the executor's incremental prepare key on this value.
//
// The hash is a tagged field stream folded through the splitmix64 finalizer into two
// independent 64-bit lanes. It is stable within a process run — exactly the lifetime of
// the caches it keys — and every field carries a distinct tag, so reordered or omitted
// fields change the digest (e.g. two mask kinds whose parameter lists happen to encode
// the same bytes still hash apart through the kind tag).
#ifndef DCP_CORE_PLAN_SIGNATURE_H_
#define DCP_CORE_PLAN_SIGNATURE_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "masks/mask_spec.h"
#include "runtime/cluster.h"

namespace dcp {

struct PlanSignature {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool IsZero() const { return lo == 0 && hi == 0; }
  bool operator==(const PlanSignature&) const = default;

  // 32 lowercase hex digits, hi lane first.
  std::string ToHex() const;
};

struct PlanSignatureHash {
  size_t operator()(const PlanSignature& sig) const {
    return static_cast<size_t>(sig.lo ^ (sig.hi * 0x9e3779b97f4a7c15ULL));
  }
};

// Incremental two-lane hasher. Field order is part of the canonical form: callers add
// fields in a fixed, documented order and prefix each logical group with a tag.
class PlanSignatureBuilder {
 public:
  void Add(uint64_t value);
  void AddSigned(int64_t value) { Add(static_cast<uint64_t>(value)); }
  void AddDouble(double value);
  void AddBool(bool value) { Add(value ? 1 : 0); }
  void AddSpan(std::span<const int64_t> values);

  PlanSignature Finish() const;

 private:
  uint64_t lo_ = 0x6463702d706c616eULL;  // "dcp-plan"
  uint64_t hi_ = 0x7369676e61747572ULL;  // "signatur"
};

// Full plan identity: seqlens + mask spec + cluster + all planner options (block size
// included). Equal signatures => PlanBatch returns bit-identical plans. Seqlens are a
// span so the service can hash straight out of an arena-decoded request without
// materializing a vector (std::vector converts implicitly).
PlanSignature ComputePlanSignature(std::span<const int64_t> seqlens,
                                   const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                   const PlannerOptions& options);
// Braced-list convenience (std::span gains this constructor only in C++26).
inline PlanSignature ComputePlanSignature(std::initializer_list<int64_t> seqlens,
                                          const MaskSpec& mask_spec,
                                          const ClusterSpec& cluster,
                                          const PlannerOptions& options) {
  return ComputePlanSignature(std::span<const int64_t>(seqlens.begin(), seqlens.size()),
                              mask_spec, cluster, options);
}

// Block-size-search identity: like ComputePlanSignature but with the block size replaced
// by the candidate list, keying Engine::AutoTune's per-signature winning block size.
PlanSignature ComputeTuneSignature(std::span<const int64_t> seqlens,
                                   const MaskSpec& mask_spec, const ClusterSpec& cluster,
                                   const PlannerOptions& options,
                                   const std::vector<int64_t>& block_sizes);

}  // namespace dcp

#endif  // DCP_CORE_PLAN_SIGNATURE_H_
