#include "core/schedule.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace dcp {
namespace {

// Key of a fetchable data block on a device: (global chunk, group, kv?).
int64_t FetchKey(int gc, GroupId g, bool kv, int num_groups) {
  return (static_cast<int64_t>(gc) * num_groups + g) * 2 + (kv ? 1 : 0);
}

struct DeviceState {
  std::vector<int> blocks;                       // Comp blocks assigned to this device.
  std::unordered_set<int64_t> fetched;           // Remote blocks already scheduled to fetch.
  std::vector<double> comm_required;             // Total bytes to fetch, per source device.
  std::vector<double> div_comm;                  // Bytes scheduled this division, per source.
  std::vector<char> scheduled;                   // Parallel to `blocks`.
  Flops load = 0.0;                              // Compute already scheduled.
};

}  // namespace

ScheduleResult ScheduleBlocks(const BlockGraph& graph, const PlacementResult& placement,
                              int num_devices, const ScheduleOptions& options) {
  const int t_count = options.divisions;
  DCP_CHECK_GE(t_count, 1);
  const BatchLayout& layout = graph.layout;

  ScheduleResult result;
  result.divisions.assign(
      static_cast<size_t>(num_devices),
      std::vector<std::vector<int>>(static_cast<size_t>(t_count)));

  std::vector<DeviceState> state(static_cast<size_t>(num_devices));
  for (auto& dev : state) {
    dev.comm_required.assign(static_cast<size_t>(num_devices), 0.0);
    dev.div_comm.assign(static_cast<size_t>(num_devices), 0.0);
  }
  for (int i = 0; i < graph.num_comp_blocks(); ++i) {
    state[static_cast<size_t>(placement.comp_device[static_cast<size_t>(i)])]
        .blocks.push_back(i);
  }

  // Returns the new fetches block `i` would require on device `d` right now:
  // {src_device, bytes, key} per not-yet-fetched remote input.
  struct Fetch {
    DeviceId src;
    double bytes;
    int64_t key;
  };
  auto new_fetches = [&](int d, int i, std::vector<Fetch>& out) {
    out.clear();
    const CompBlock& block = graph.comp_blocks[static_cast<size_t>(i)];
    const int q_gc = layout.GlobalChunkId(block.seq, block.q_chunk);
    const int kv_gc = layout.GlobalChunkId(block.seq, block.kv_chunk);
    const DeviceId q_home = placement.chunk_device[static_cast<size_t>(q_gc)];
    const DeviceId kv_home = placement.chunk_device[static_cast<size_t>(kv_gc)];
    auto& dev = state[static_cast<size_t>(d)];
    if (q_home != d) {
      const int64_t key = FetchKey(q_gc, block.group, false, layout.num_groups);
      if (!dev.fetched.contains(key)) {
        out.push_back({q_home,
                       static_cast<double>(layout.QBlockBytes(
                           graph.chunks[static_cast<size_t>(q_gc)].length())),
                       key});
      }
    }
    if (kv_home != d) {
      const int64_t key = FetchKey(kv_gc, block.group, true, layout.num_groups);
      if (!dev.fetched.contains(key)) {
        out.push_back({kv_home,
                       static_cast<double>(layout.KvBlockBytes(
                           graph.chunks[static_cast<size_t>(kv_gc)].length())),
                       key});
      }
    }
  };

  // Pass 1: total communication requirement per device (dedup in canonical block order).
  std::vector<Fetch> fetches;
  for (int d = 0; d < num_devices; ++d) {
    auto& dev = state[static_cast<size_t>(d)];
    for (int i : dev.blocks) {
      new_fetches(d, i, fetches);
      for (const Fetch& f : fetches) {
        dev.comm_required[static_cast<size_t>(f.src)] += f.bytes;
        dev.fetched.insert(f.key);
      }
    }
    dev.fetched.clear();
    dev.scheduled.assign(dev.blocks.size(), 0);
  }

  auto schedule_block = [&](int d, int t, size_t pos) {
    auto& dev = state[static_cast<size_t>(d)];
    const int i = dev.blocks[pos];
    new_fetches(d, i, fetches);
    for (const Fetch& f : fetches) {
      dev.div_comm[static_cast<size_t>(f.src)] += f.bytes;
      dev.fetched.insert(f.key);
    }
    result.divisions[static_cast<size_t>(d)][static_cast<size_t>(t)].push_back(i);
    dev.scheduled[pos] = 1;
    dev.load += graph.comp_blocks[static_cast<size_t>(i)].flops;
  };

  if (t_count == 1) {
    for (int d = 0; d < num_devices; ++d) {
      for (size_t pos = 0; pos < state[static_cast<size_t>(d)].blocks.size(); ++pos) {
        schedule_block(d, 0, pos);
      }
    }
    return result;
  }

  // Division 0: communication-free blocks.
  for (int d = 0; d < num_devices; ++d) {
    auto& dev = state[static_cast<size_t>(d)];
    for (size_t pos = 0; pos < dev.blocks.size(); ++pos) {
      new_fetches(d, dev.blocks[pos], fetches);
      if (fetches.empty()) {
        schedule_block(d, 0, pos);
      }
    }
  }

  // Middle divisions: devices in ascending scheduled-compute order, each filled under the
  // per-division communication budget (comm_required / T per source device).
  for (int t = 1; t < t_count - 1; ++t) {
    std::vector<char> processed(static_cast<size_t>(num_devices), 0);
    for (int round = 0; round < num_devices; ++round) {
      int d = -1;
      Flops least = std::numeric_limits<Flops>::max();
      for (int cand = 0; cand < num_devices; ++cand) {
        if (!processed[static_cast<size_t>(cand)] &&
            state[static_cast<size_t>(cand)].load < least) {
          least = state[static_cast<size_t>(cand)].load;
          d = cand;
        }
      }
      processed[static_cast<size_t>(d)] = 1;
      auto& dev = state[static_cast<size_t>(d)];
      std::fill(dev.div_comm.begin(), dev.div_comm.end(), 0.0);
      for (size_t pos = 0; pos < dev.blocks.size(); ++pos) {
        if (dev.scheduled[pos]) {
          continue;
        }
        new_fetches(d, dev.blocks[pos], fetches);
        bool fits = true;
        for (size_t fi = 0; fi < fetches.size() && fits; ++fi) {
          const Fetch& f = fetches[fi];
          // Cumulative within the block: both of a block's fetches may share a source.
          double pending = f.bytes;
          for (size_t fj = 0; fj < fi; ++fj) {
            if (fetches[fj].src == f.src) {
              pending += fetches[fj].bytes;
            }
          }
          const double limit =
              dev.comm_required[static_cast<size_t>(f.src)] / t_count + 1.0;
          if (dev.div_comm[static_cast<size_t>(f.src)] + pending > limit) {
            fits = false;
          }
        }
        if (fits) {
          schedule_block(d, t, pos);
        }
      }
    }
  }

  // Last division: everything that remains.
  for (int d = 0; d < num_devices; ++d) {
    auto& dev = state[static_cast<size_t>(d)];
    for (size_t pos = 0; pos < dev.blocks.size(); ++pos) {
      if (!dev.scheduled[pos]) {
        schedule_block(d, t_count - 1, pos);
      }
    }
  }
  return result;
}

}  // namespace dcp
