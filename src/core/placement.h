// Hierarchical data/computation placement (paper §4.2): partition the hypergraph across
// machines first (minimizing the expensive inter-node traffic, with a loose compute
// tolerance), then partition each machine's sub-hypergraph across its devices (tight
// tolerance).
#ifndef DCP_CORE_PLACEMENT_H_
#define DCP_CORE_PLACEMENT_H_

#include <vector>

#include "core/block_gen.h"
#include "core/hypergraph_build.h"
#include "hypergraph/partitioner.h"

namespace dcp {

struct PlacementOptions {
  int num_nodes = 4;
  int devices_per_node = 8;
  // Compute-imbalance tolerances (paper defaults: inter-node 0.4, intra-node 0.1).
  double eps_inter = 0.4;
  double eps_intra = 0.1;
  // Data blocks are kept "as balanced as possible" (paper): a tight fixed tolerance.
  double eps_data = 0.15;
  bool hierarchical = true;   // false: flat partition straight into all devices.
  bool use_multilevel = true; // false: greedy partitioner (ablation baseline).
  uint64_t seed = 1;
  // Partitioner overrides (see PlannerOptions); non-positive keeps the default
  // (vcycle_iterations uses -1 as "default" so 0 can disable the polish rounds).
  int vcycles = 0;
  int vcycle_iterations = -1;
  int refinement_passes = 0;
  int initial_tries = 0;
  int coarsen_until_per_part = 0;
  int coarsening_grain = 0;
};

struct PlacementResult {
  std::vector<DeviceId> chunk_device;  // Per global chunk id.
  std::vector<DeviceId> comp_device;   // Per computation block index.
  double device_level_cost = 0.0;      // Sum of connectivity objectives actually solved.
  bool balanced = true;
  // Stage decomposition summed over every partitioner run (both hierarchy
  // levels); feeds the plan_coarsen/plan_initial/plan_refine trace phases.
  PartitionStageSeconds stages;
};

PlacementResult PlaceBlocks(const BlockGraph& graph, const BuiltHypergraph& built,
                            const PlacementOptions& options);

}  // namespace dcp

#endif  // DCP_CORE_PLACEMENT_H_
