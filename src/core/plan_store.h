// Disk-backed, versioned, checksummed store of compiled plans keyed by canonical
// PlanSignature — the cross-process half of the Engine's plan cache (paper §3.1: plans
// are serialized by the planner and shipped to devices; ParaDySe-style recurring batch
// shapes make the same signatures reappear across process restarts). A fresh Engine
// pointed at a populated store serves previously-planned signatures from disk instead of
// replanning, bit-identical to the original plans.
//
// On-disk layout: one record file per signature inside the store directory,
//
//   <store>/<32-hex-signature>.dcpplan
//
// written atomically (temp file in the same directory + rename), so a crashed or killed
// writer process never leaves a half-record under a live name. (The write is not
// fsynced: after a power loss the rename may surface torn page-cache data — that case
// is detected by the CRC trailer and replanned around, not prevented.) Record format
// (all integers little-endian, fixed width):
//
//   offset 0   "DCPSTORE"             8-byte magic
//          8   u32 format version     (currently 1)
//         12   u64 signature.lo
//         20   u64 signature.hi
//         28   sections               repeated { u32 tag, u64 length, payload }
//          ⋮                          tag 1 = plan payload (SerializePlanBinary bytes);
//                                     unknown tags are skipped for forward compatibility
//   size - 4   u32 CRC32              over every byte before the trailer
//
// Decoding validates, in order: minimum length, magic, version, the CRC32 trailer
// (catching bit flips and torn writes before any byte reaches the plan decoder), section
// framing, and finally the bounds-checked binary plan payload — and cross-checks the
// embedded signature against both the filename and the requested key. Every failure is a
// recoverable DATA_LOSS Status; a corrupt record is counted, skipped, and replanned
// around, never a process abort.
//
// Bundles (`dcpctl cache export|import`) are a portable concatenation of records:
// "DCPBUNDL", u32 version, u32 record count, then repeated { u64 length, record bytes }.
#ifndef DCP_CORE_PLAN_STORE_H_
#define DCP_CORE_PLAN_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/plan_signature.h"
#include "runtime/instructions.h"

namespace dcp {

struct PlanStoreStats {
  int64_t entries = 0;          // Records currently indexed in the directory.
  int64_t hits = 0;             // Successful Load()s.
  int64_t writes = 0;           // Successful Put()s.
  int64_t corrupt_skipped = 0;  // Records rejected by validation and skipped.
};

class PlanStore {
 public:
  // Opens (creating if needed) the store directory and warm-loads the signature index
  // from the record filenames — records themselves stream in lazily on Load. Fails only
  // on filesystem errors; unparseable filenames are ignored. When `registry` is
  // non-null (the Engine passes its child registry) the store's counters and
  // record-IO latency histograms register there, so they appear in the process
  // scrape; otherwise the counters are standalone cells owned by the store.
  // PlanStoreStats is a thin view over them either way.
  static StatusOr<std::unique_ptr<PlanStore>> Open(const std::string& directory,
                                                   metrics::Registry* registry = nullptr);

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  const std::string& directory() const { return directory_; }

  // Whether a record for `sig` is indexed (it may still fail validation on Load).
  bool Contains(const PlanSignature& sig) const;

  // Loads and fully validates the record for `sig`. NOT_FOUND when absent; DATA_LOSS
  // (counted in stats().corrupt_skipped) when the record fails any validation step.
  StatusOr<BatchPlan> Load(const PlanSignature& sig);

  // Atomically writes (or replaces) the record for `sig`.
  Status Put(const PlanSignature& sig, const BatchPlan& plan);

  // All indexed signatures, sorted by (hi, lo) so callers that serialize the set
  // (ExportBundle, gossip indexes) produce identical bytes in every process.
  std::vector<PlanSignature> Signatures() const;

  PlanStoreStats stats() const;

  // Concatenates every valid record into a portable bundle file (atomic write). Corrupt
  // records are counted and skipped. Returns the number of records exported.
  StatusOr<int> ExportBundle(const std::string& file);
  // Imports records from a bundle, validating each; corrupt entries are counted and
  // skipped. Returns the number of records imported.
  StatusOr<int> ImportBundle(const std::string& file);

  // Record codec, exposed for tests and the bundle path. EncodeRecord produces the full
  // header + sections + CRC32 byte stream; DecodeRecord validates everything.
  static std::string EncodeRecord(const PlanSignature& sig, const BatchPlan& plan);
  static StatusOr<std::pair<PlanSignature, BatchPlan>> DecodeRecord(
      std::string_view bytes);

 private:
  explicit PlanStore(std::string directory) : directory_(std::move(directory)) {}

  std::string RecordPath(const PlanSignature& sig) const;
  // Writes `bytes` to `path` via temp file + rename.
  Status AtomicWrite(const std::string& path, std::string_view bytes);

  const std::string directory_;

  mutable Mutex mu_;
  // Signature -> record filename (basename).
  std::unordered_map<PlanSignature, std::string, PlanSignatureHash> index_
      DCP_GUARDED_BY(mu_);
  // Pointers set once in Open before the store is published; every Add happens
  // with mu_ held so stats() snapshots stay coherent (atomic cells keep the
  // reads tear-free).
  metrics::Counter* hits_ = nullptr;
  metrics::Counter* writes_ = nullptr;
  metrics::Counter* corrupt_skipped_ = nullptr;
  std::unique_ptr<metrics::Counter[]> owned_cells_;  // Backing when registry-less.
  metrics::Histogram* read_latency_us_ = nullptr;   // Load: file read + decode.
  metrics::Histogram* write_latency_us_ = nullptr;  // Put: encode + atomic write.
  int64_t temp_counter_ DCP_GUARDED_BY(mu_) = 0;
};

}  // namespace dcp

#endif  // DCP_CORE_PLAN_STORE_H_
