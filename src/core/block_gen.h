// Block generation (paper §4.1): cuts a batch into token chunks (the placement units) and
// computation blocks (one per non-empty Q-chunk x KV-chunk tile per KV group). Tiles whose
// mask region is entirely zero are never constructed — this is where mask sparsity becomes
// structural.
#ifndef DCP_CORE_BLOCK_GEN_H_
#define DCP_CORE_BLOCK_GEN_H_

#include <vector>

#include "masks/mask.h"
#include "runtime/layout.h"

namespace dcp {

// The placement unit: B consecutive tokens of one sequence. All of the chunk's data blocks
// (Q/KV/O of every KV group) are co-located on the chunk's device (paper §4.1 constraint).
struct TokenChunk {
  SeqId seq = 0;
  ChunkId chunk = 0;
  int64_t begin = 0;
  int64_t end = 0;
  Bytes bytes = 0;  // Total footprint of the chunk's data blocks (all groups, Q+KV+O).

  int64_t length() const { return end - begin; }
};

// One attention tile: Q chunk x KV chunk for one KV group.
struct CompBlock {
  SeqId seq = 0;
  GroupId group = 0;
  ChunkId q_chunk = 0;
  ChunkId kv_chunk = 0;
  int64_t pairs = 0;  // Attended (q, kv) token pairs in the tile.
  Flops flops = 0.0;  // Forward FLOPs over all heads of the group.
  bool full = false;  // Tile has no masked entries.
};

struct BlockGraph {
  BatchLayout layout;
  std::vector<TokenChunk> chunks;      // Indexed by layout.GlobalChunkId(seq, chunk).
  std::vector<CompBlock> comp_blocks;

  int num_chunks() const { return static_cast<int>(chunks.size()); }
  int num_comp_blocks() const { return static_cast<int>(comp_blocks.size()); }
  Flops TotalFlops() const;
};

// Generates chunks and non-empty computation blocks for the batch. masks[s] must match
// layout.seqlens[s].
BlockGraph GenerateBlocks(const BatchLayout& layout, const std::vector<SequenceMask>& masks);

}  // namespace dcp

#endif  // DCP_CORE_BLOCK_GEN_H_
