#include "e2e/model_spec.h"

namespace dcp {

ModelSpec ModelSpec::Gpt8B() { return ModelSpec{}; }

int64_t ModelSpec::LayerMatmulParams() const {
  const int64_t kv_hidden = static_cast<int64_t>(num_kv_groups) * head_dim;
  const int64_t q_proj = hidden * hidden;
  const int64_t kv_proj = 2 * hidden * kv_hidden;
  const int64_t o_proj = hidden * hidden;
  const int64_t ffn = 3 * hidden * ffn_hidden;  // Gated FFN: up, gate, down.
  return q_proj + kv_proj + o_proj + ffn;
}

int64_t ModelSpec::TotalParams() const {
  return static_cast<int64_t>(num_layers) * LayerMatmulParams() + 2 * vocab * hidden;
}

Flops ModelSpec::DenseLayerForwardFlops(int64_t tokens) const {
  return 2.0 * static_cast<Flops>(LayerMatmulParams()) * static_cast<Flops>(tokens);
}

}  // namespace dcp
