// Transformer model specification for the end-to-end experiments: the paper trains a GPT
// 8B with 32 layers, hidden 4096, 32 heads, 8 KV groups, head dim 128, FFN hidden 14336
// (Llama3-8B shape) under 4-way tensor parallelism + 16-way context parallelism.
#ifndef DCP_E2E_MODEL_SPEC_H_
#define DCP_E2E_MODEL_SPEC_H_

#include <cstdint>

#include "common/types.h"

namespace dcp {

struct ModelSpec {
  int num_layers = 32;
  int64_t hidden = 4096;
  int num_heads = 32;
  int num_kv_groups = 8;
  int64_t head_dim = 128;
  int64_t ffn_hidden = 14336;
  int64_t vocab = 128256;
  int tensor_parallel = 4;

  static ModelSpec Gpt8B();

  // Parameters of one transformer layer's matmuls (attention projections + FFN).
  int64_t LayerMatmulParams() const;
  // Total parameter count (layers + embedding/unembedding).
  int64_t TotalParams() const;
  // Forward FLOPs of the context-independent (non-attention-score) ops for `tokens`
  // tokens of one layer: 2 * params * tokens.
  Flops DenseLayerForwardFlops(int64_t tokens) const;
};

}  // namespace dcp

#endif  // DCP_E2E_MODEL_SPEC_H_
