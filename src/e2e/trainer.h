// Tiny numeric GPT trainer for the precision experiment (paper Fig. 21): trains a small
// transformer on synthetic bigram data with the attention op provided either by the
// single-device reference implementation (the "MLM baseline") or by the full DCP
// planner+executor pipeline, and records the loss curve. All other ops (embedding,
// projections, gated MLP, cross-entropy) are computed identically with manual gradients,
// so any loss divergence is attributable to the attention execution order — the same claim
// the paper's figure makes.
#ifndef DCP_E2E_TRAINER_H_
#define DCP_E2E_TRAINER_H_

#include <vector>

#include "masks/mask.h"
#include "runtime/cluster.h"

namespace dcp {

enum class AttentionEngineKind {
  kReference,  // Exact softmax attention on one device (baseline).
  kDcp,        // Planner + multi-device numeric executor.
};

struct TrainerConfig {
  int vocab = 64;
  int num_heads = 4;
  int num_kv_groups = 2;
  int head_dim = 8;          // Model width = num_heads * head_dim.
  int64_t ffn_hidden = 64;
  int iterations = 200;
  float learning_rate = 0.2f;
  MaskSpec mask = MaskSpec::Causal();
  std::vector<int64_t> seqlens = {48, 33, 24};
  uint64_t seed = 7;

  // DCP engine configuration.
  int64_t block_size = 16;
  ClusterSpec cluster;  // Defaults to 2 nodes x 2 devices below.

  TrainerConfig() {
    cluster.num_nodes = 2;
    cluster.devices_per_node = 2;
  }
};

// Trains for config.iterations steps and returns the per-iteration training loss.
std::vector<double> TrainLossCurve(const TrainerConfig& config, AttentionEngineKind engine);

}  // namespace dcp

#endif  // DCP_E2E_TRAINER_H_
