#include "e2e/iteration_model.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace dcp {

double IterationBreakdown::AttentionTotal() const {
  return attn_compute + attn_exposed_comm + attn_overhead;
}

double IterationBreakdown::Others() const {
  return dense_compute + tp_comm + grad_sync + optimizer;
}

double IterationBreakdown::Total() const { return AttentionTotal() + Others(); }

int64_t MaxDeviceTokens(const BatchPlan& plan) {
  const BatchLayout& layout = plan.layout;
  std::vector<int64_t> tokens(static_cast<size_t>(plan.num_devices()), 0);
  int gc = 0;
  for (SeqId s = 0; s < layout.num_sequences(); ++s) {
    for (ChunkId c = 0; c < layout.NumChunks(s); ++c, ++gc) {
      tokens[static_cast<size_t>(plan.chunk_home[static_cast<size_t>(gc)])] +=
          layout.ChunkLen(s, c);
    }
  }
  int64_t longest = 0;
  for (int64_t t : tokens) {
    longest = std::max(longest, t);
  }
  return longest;
}

IterationBreakdown ModelIteration(const ModelSpec& model, const ClusterSpec& cluster,
                                  const BatchPlan& plan) {
  const CostModel cost(cluster);
  SimEngine sim(cost);
  const SimResult fw = sim.Simulate(plan, /*backward=*/false);
  const SimResult bw = sim.Simulate(plan, /*backward=*/true);

  IterationBreakdown out;
  const double layers = model.num_layers;
  // Attention decomposition: critical-path makespan split into its components, averaged
  // over devices for the comm categories (cluster-level aggregate like the paper's traces).
  out.attn_exposed_comm = (fw.MeanExposedComm() + bw.MeanExposedComm()) * layers;
  out.attn_overlap_comm = (fw.MeanOverlappedComm() + bw.MeanOverlappedComm()) * layers;
  const double makespan = (fw.makespan + bw.makespan) * layers;
  // Attribute the non-comm remainder of the makespan to compute + overheads.
  const double attn_compute_raw =
      (fw.MeanAttentionCompute() + bw.MeanAttentionCompute()) * layers;
  out.attn_compute = attn_compute_raw;
  out.attn_overhead =
      std::max(0.0, makespan - out.attn_exposed_comm - attn_compute_raw);

  // Context-independent ops: forward 2*P*T flops, backward 2x, on the device with the most
  // tokens (the paper's packing keeps tokens balanced; DCP balances via the data weight).
  // The cluster's dense_tflops already aggregates the GPUs of one TP rank, so the full
  // layer FLOPs go through it undivided.
  const int64_t device_tokens = MaxDeviceTokens(plan);
  const double dense_fw =
      cost.DenseSeconds(model.DenseLayerForwardFlops(device_tokens)) * model.num_layers;
  out.dense_compute = dense_fw * 3.0;  // fw + 2x bw.

  // Tensor-parallel collectives: 2 all-reduces per layer forward (attention out, MLP out),
  // 2 in backward, ring over the TP group on NVSwitch. Activation bytes: tokens x hidden.
  const double tp = model.tensor_parallel;
  const Bytes act_bytes = device_tokens * model.hidden * 2;
  const double allreduce =
      2.0 * (tp - 1.0) / tp * static_cast<double>(act_bytes) /
      (cluster.intra_node_gbps * 1e9 / (cluster.devices_per_node > 0 ? 1.0 : 1.0));
  out.tp_comm = allreduce * 4.0 * model.num_layers;

  // Gradient sync: bf16 grads of params / TP, ring all-reduce across the CP group over the
  // node NICs (devices per node share the NIC). Half is assumed overlapped with backward.
  const int cp = plan.num_devices();
  const Bytes grad_bytes = model.TotalParams() / model.tensor_parallel * 2;
  const double nic_share = cluster.node_nic_gbps * 1e9 /
                           std::max(1, cluster.devices_per_node);
  const double ring_factor = 2.0 * (cp - 1.0) / cp;
  out.grad_sync = 0.5 * ring_factor * static_cast<double>(grad_bytes) / nic_share;

  // Optimizer: fp32 master weights + two Adam moments read/written per step.
  const Bytes opt_bytes = model.TotalParams() / model.tensor_parallel * 4 * 6;
  out.optimizer = static_cast<double>(opt_bytes) / (cluster.hbm_gbps * 1e9);
  return out;
}

}  // namespace dcp
