// End-to-end iteration-time model (paper §7.2): prices one training iteration of the 8B
// model as per-layer attention (from the discrete-event simulator, forward + backward) plus
// context-independent compute, tensor-parallel collectives, gradient synchronization and
// the optimizer step. The non-attention components are identical between DCP and the MLM
// baseline, exactly as in the paper's decomposition (Fig. 22) — only the attention plan
// differs.
#ifndef DCP_E2E_ITERATION_MODEL_H_
#define DCP_E2E_ITERATION_MODEL_H_

#include "e2e/model_spec.h"
#include "runtime/sim_engine.h"

namespace dcp {

struct IterationBreakdown {
  // Attention operator, summed over layers (from the simulator).
  double attn_compute = 0.0;       // Kernel busy time on the critical device.
  double attn_exposed_comm = 0.0;  // Non-overlapped CP communication.
  double attn_overlap_comm = 0.0;  // CP communication hidden under compute.
  double attn_overhead = 0.0;      // Kernel-launch / per-step fixed costs.
  // Everything else ("Others" in the paper's figures).
  double dense_compute = 0.0;
  double tp_comm = 0.0;
  double grad_sync = 0.0;
  double optimizer = 0.0;

  double AttentionTotal() const;
  double Others() const;
  double Total() const;
};

// `plan` is the attention plan of one global batch (DCP's or a baseline's); the model
// reuses it for every layer (all layers share the same structure, paper §8).
IterationBreakdown ModelIteration(const ModelSpec& model, const ClusterSpec& cluster,
                                  const BatchPlan& plan);

// Max tokens owned by any device under the plan's placement (drives the dense-op time on
// the critical path).
int64_t MaxDeviceTokens(const BatchPlan& plan);

}  // namespace dcp

#endif  // DCP_E2E_ITERATION_MODEL_H_
