#include "e2e/trainer.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "core/api.h"
#include "runtime/reference_attention.h"

namespace dcp {
namespace {

// --- Minimal dense linear algebra on row-major float buffers. ---

// C[m, n] += A[m, k] * B[k, n].
void MatMulAcc(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) {
        continue;
      }
      const float* b_row = b + p * n;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

// C[m, n] += A^T[m, k] * B[k, n] where A is stored [k, m].
void MatMulAtAcc(const float* a, const float* b, float* c, int64_t m, int64_t k,
                 int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) {
        continue;
      }
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

// C[m, k] += A[m, n] * B^T[n, k] where B is stored [k, n].
void MatMulBtAcc(const float* a, const float* b, float* c, int64_t m, int64_t n,
                 int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * n;
    float* c_row = c + i * k;
    for (int64_t j = 0; j < k; ++j) {
      const float* b_row = b + j * n;
      float dot = 0.0f;
      for (int64_t p = 0; p < n; ++p) {
        dot += a_row[p] * b_row[p];
      }
      c_row[j] += dot;
    }
  }
}

// --- Attention engine abstraction. ---

class AttentionEngine {
 public:
  virtual ~AttentionEngine() = default;
  virtual std::vector<Tensor> Forward(const std::vector<SeqTensors>& inputs) = 0;
  virtual std::vector<SeqGrads> Backward(const std::vector<Tensor>& douts) = 0;
};

class ReferenceEngine final : public AttentionEngine {
 public:
  explicit ReferenceEngine(const std::vector<SequenceMask>* masks) : masks_(masks) {}

  std::vector<Tensor> Forward(const std::vector<SeqTensors>& inputs) override {
    inputs_ = inputs;
    outputs_.clear();
    for (size_t s = 0; s < inputs.size(); ++s) {
      outputs_.push_back(ReferenceAttentionForward(inputs[s], (*masks_)[s]));
    }
    return outputs_;
  }

  std::vector<SeqGrads> Backward(const std::vector<Tensor>& douts) override {
    std::vector<SeqGrads> grads;
    for (size_t s = 0; s < douts.size(); ++s) {
      grads.push_back(
          ReferenceAttentionBackward(inputs_[s], (*masks_)[s], outputs_[s], douts[s]));
    }
    return grads;
  }

 private:
  const std::vector<SequenceMask>* masks_;
  std::vector<SeqTensors> inputs_;
  std::vector<Tensor> outputs_;
};

class DcpEngine final : public AttentionEngine {
 public:
  explicit DcpEngine(const TrainerConfig& config) {
    EngineOptions options;
    options.planner.block_size = config.block_size;
    options.planner.num_groups = config.num_kv_groups;
    options.planner.heads_per_group = config.num_heads / config.num_kv_groups;
    options.planner.head_dim = config.head_dim;
    options.planner_threads = 1;  // The trainer plans one fixed batch shape.
    engine_ = std::make_unique<Engine>(config.cluster, options);
    StatusOr<PlanHandle> handle = engine_->Plan(config.seqlens, config.mask);
    DCP_CHECK(handle.ok()) << "trainer planning failed: " << handle.status().ToString();
    executor_.Prepare(handle.value());
  }

  std::vector<Tensor> Forward(const std::vector<SeqTensors>& inputs) override {
    return DcpAttention::Forward(executor_, inputs);
  }

  std::vector<SeqGrads> Backward(const std::vector<Tensor>& douts) override {
    return DcpAttention::Backward(executor_, douts);
  }

 private:
  std::unique_ptr<Engine> engine_;
  DcpExecutor executor_;
};

// --- The tiny GPT. ---

struct Parameters {
  // All matrices row-major: embed [vocab, d], wq [d, d], wk/wv [d, g*dh], wo [d, d],
  // w1 [d, f], w2 [f, d], unembed [d, vocab].
  Tensor embed, wq, wk, wv, wo, w1, w2, unembed;

  static Parameters Init(const TrainerConfig& config, Rng& rng) {
    const int64_t d = static_cast<int64_t>(config.num_heads) * config.head_dim;
    const int64_t kv = static_cast<int64_t>(config.num_kv_groups) * config.head_dim;
    const float scale = 0.3f;
    Parameters p;
    p.embed = Tensor::Random({config.vocab, d}, rng, -scale, scale);
    p.wq = Tensor::Random({d, d}, rng, -scale, scale);
    p.wk = Tensor::Random({d, kv}, rng, -scale, scale);
    p.wv = Tensor::Random({d, kv}, rng, -scale, scale);
    p.wo = Tensor::Random({d, d}, rng, -scale, scale);
    p.w1 = Tensor::Random({d, config.ffn_hidden}, rng, -scale, scale);
    p.w2 = Tensor::Random({config.ffn_hidden, d}, rng, -scale, scale);
    p.unembed = Tensor::Random({d, config.vocab}, rng, -scale, scale);
    return p;
  }

  static Parameters ZerosLike(const Parameters& other) {
    Parameters p;
    p.embed = Tensor::Zeros(other.embed.shape());
    p.wq = Tensor::Zeros(other.wq.shape());
    p.wk = Tensor::Zeros(other.wk.shape());
    p.wv = Tensor::Zeros(other.wv.shape());
    p.wo = Tensor::Zeros(other.wo.shape());
    p.w1 = Tensor::Zeros(other.w1.shape());
    p.w2 = Tensor::Zeros(other.w2.shape());
    p.unembed = Tensor::Zeros(other.unembed.shape());
    return p;
  }

  void SgdStep(const Parameters& grads, float lr) {
    auto update = [lr](Tensor& w, const Tensor& g) {
      for (int64_t i = 0; i < w.numel(); ++i) {
        w.data()[i] -= lr * g.data()[i];
      }
    };
    update(embed, grads.embed);
    update(wq, grads.wq);
    update(wk, grads.wk);
    update(wv, grads.wv);
    update(wo, grads.wo);
    update(w1, grads.w1);
    update(w2, grads.w2);
    update(unembed, grads.unembed);
  }
};

// Synthetic bigram-chain data: next token is a deterministic function of the current one
// with probability 0.8, uniform otherwise — learnable structure so the loss decreases.
std::vector<std::vector<int>> MakeTokens(const TrainerConfig& config, Rng& rng) {
  std::vector<std::vector<int>> sequences;
  for (int64_t len : config.seqlens) {
    std::vector<int> tokens(static_cast<size_t>(len));
    tokens[0] = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config.vocab)));
    for (int64_t t = 1; t < len; ++t) {
      if (rng.NextDouble() < 0.8) {
        tokens[static_cast<size_t>(t)] =
            (tokens[static_cast<size_t>(t - 1)] * 7 + 3) % config.vocab;
      } else {
        tokens[static_cast<size_t>(t)] =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config.vocab)));
      }
    }
    sequences.push_back(std::move(tokens));
  }
  return sequences;
}

}  // namespace

std::vector<double> TrainLossCurve(const TrainerConfig& config,
                                   AttentionEngineKind engine_kind) {
  DCP_CHECK_EQ(config.num_heads % config.num_kv_groups, 0);
  const int64_t d = static_cast<int64_t>(config.num_heads) * config.head_dim;
  const int64_t kv_d = static_cast<int64_t>(config.num_kv_groups) * config.head_dim;
  const int64_t f = config.ffn_hidden;
  const int heads = config.num_heads;
  const int groups = config.num_kv_groups;
  const int dh = config.head_dim;

  std::vector<SequenceMask> masks;
  for (int64_t len : config.seqlens) {
    masks.push_back(SequenceMask::Build(config.mask, MakeSequenceInfo(config.mask, len)));
  }
  std::unique_ptr<AttentionEngine> engine;
  if (engine_kind == AttentionEngineKind::kReference) {
    engine = std::make_unique<ReferenceEngine>(&masks);
  } else {
    engine = std::make_unique<DcpEngine>(config);
  }

  Rng rng(config.seed);
  Parameters params = Parameters::Init(config, rng);
  const std::vector<std::vector<int>> data = MakeTokens(config, rng);
  const size_t num_seqs = data.size();

  std::vector<double> losses;
  losses.reserve(static_cast<size_t>(config.iterations));

  for (int iter = 0; iter < config.iterations; ++iter) {
    Parameters grads = Parameters::ZerosLike(params);
    double loss_sum = 0.0;
    int64_t loss_count = 0;

    // --- Forward (all sequences) ---
    std::vector<Tensor> xs;          // [L, d] embedded inputs.
    std::vector<SeqTensors> attn_in; // Q/K/V per sequence.
    for (size_t s = 0; s < num_seqs; ++s) {
      const int64_t len = config.seqlens[s];
      Tensor x = Tensor::Zeros({len, d});
      for (int64_t t = 0; t < len; ++t) {
        const float* row = params.embed.data() + data[s][static_cast<size_t>(t)] * d;
        std::copy(row, row + d, x.data() + t * d);
      }
      Tensor q2 = Tensor::Zeros({len, d});
      Tensor k2 = Tensor::Zeros({len, kv_d});
      Tensor v2 = Tensor::Zeros({len, kv_d});
      MatMulAcc(x.data(), params.wq.data(), q2.data(), len, d, d);
      MatMulAcc(x.data(), params.wk.data(), k2.data(), len, d, kv_d);
      MatMulAcc(x.data(), params.wv.data(), v2.data(), len, d, kv_d);
      // Reshape [L, H*dh] -> [H, L, dh] (and [L, G*dh] -> [G, L, dh]).
      SeqTensors in;
      in.q = Tensor::Zeros({heads, len, dh});
      in.k = Tensor::Zeros({groups, len, dh});
      in.v = Tensor::Zeros({groups, len, dh});
      for (int64_t t = 0; t < len; ++t) {
        for (int h = 0; h < heads; ++h) {
          std::copy(q2.data() + t * d + h * dh, q2.data() + t * d + (h + 1) * dh,
                    in.q.data() + (static_cast<int64_t>(h) * len + t) * dh);
        }
        for (int g = 0; g < groups; ++g) {
          std::copy(k2.data() + t * kv_d + g * dh, k2.data() + t * kv_d + (g + 1) * dh,
                    in.k.data() + (static_cast<int64_t>(g) * len + t) * dh);
          std::copy(v2.data() + t * kv_d + g * dh, v2.data() + t * kv_d + (g + 1) * dh,
                    in.v.data() + (static_cast<int64_t>(g) * len + t) * dh);
        }
      }
      xs.push_back(std::move(x));
      attn_in.push_back(std::move(in));
    }

    const std::vector<Tensor> attn_out = engine->Forward(attn_in);  // [H, L, dh] each.

    // Per-sequence head: residual + MLP + unembed + loss; collect dA for the engine.
    std::vector<Tensor> douts;
    std::vector<Tensor> y1s;   // Saved activations for the attention-input gradient path.
    std::vector<Tensor> dy1s;
    for (size_t s = 0; s < num_seqs; ++s) {
      const int64_t len = config.seqlens[s];
      // A_flat [L, d] from [H, L, dh].
      Tensor a_flat = Tensor::Zeros({len, d});
      for (int h = 0; h < heads; ++h) {
        for (int64_t t = 0; t < len; ++t) {
          std::copy(attn_out[s].data() + (static_cast<int64_t>(h) * len + t) * dh,
                    attn_out[s].data() + (static_cast<int64_t>(h) * len + t + 1) * dh,
                    a_flat.data() + t * d + h * dh);
        }
      }
      // Y1 = X + A Wo.
      Tensor y1 = xs[s];
      MatMulAcc(a_flat.data(), params.wo.data(), y1.data(), len, d, d);
      // MLP: pre = Y1 W1; H = relu(pre); Y2 = Y1 + H W2.
      Tensor pre = Tensor::Zeros({len, f});
      MatMulAcc(y1.data(), params.w1.data(), pre.data(), len, d, f);
      Tensor hidden = pre;
      for (int64_t i = 0; i < hidden.numel(); ++i) {
        hidden.data()[i] = std::max(0.0f, hidden.data()[i]);
      }
      Tensor y2 = y1;
      MatMulAcc(hidden.data(), params.w2.data(), y2.data(), len, f, d);
      // Logits + softmax cross-entropy on next-token targets.
      Tensor logits = Tensor::Zeros({len, config.vocab});
      MatMulAcc(y2.data(), params.unembed.data(), logits.data(), len, d, config.vocab);
      Tensor dlogits = Tensor::Zeros({len, config.vocab});
      for (int64_t t = 0; t + 1 < len; ++t) {
        float* row = logits.data() + t * config.vocab;
        float max_logit = row[0];
        for (int v = 1; v < config.vocab; ++v) {
          max_logit = std::max(max_logit, row[v]);
        }
        double denom = 0.0;
        for (int v = 0; v < config.vocab; ++v) {
          denom += std::exp(static_cast<double>(row[v] - max_logit));
        }
        const int target = data[s][static_cast<size_t>(t + 1)];
        const double log_prob = row[target] - max_logit - std::log(denom);
        loss_sum -= log_prob;
        ++loss_count;
        float* drow = dlogits.data() + t * config.vocab;
        for (int v = 0; v < config.vocab; ++v) {
          drow[v] =
              static_cast<float>(std::exp(static_cast<double>(row[v] - max_logit)) / denom);
        }
        drow[target] -= 1.0f;
      }
      // --- Backward through the head. ---
      // dUnembed += Y2^T dlogits; dY2 = dlogits Unembed^T.
      MatMulAtAcc(y2.data(), dlogits.data(), grads.unembed.data(), d, len, config.vocab);
      Tensor dy2 = Tensor::Zeros({len, d});
      MatMulBtAcc(dlogits.data(), params.unembed.data(), dy2.data(), len, config.vocab, d);
      // MLP backward: dW2 += H^T dY2; dH = dY2 W2^T; dpre = dH * relu'; dW1 += Y1^T dpre;
      // dY1 = dY2 + dpre W1^T.
      MatMulAtAcc(hidden.data(), dy2.data(), grads.w2.data(), f, len, d);
      Tensor dhidden = Tensor::Zeros({len, f});
      MatMulBtAcc(dy2.data(), params.w2.data(), dhidden.data(), len, d, f);
      for (int64_t i = 0; i < dhidden.numel(); ++i) {
        if (pre.data()[i] <= 0.0f) {
          dhidden.data()[i] = 0.0f;
        }
      }
      MatMulAtAcc(y1.data(), dhidden.data(), grads.w1.data(), d, len, f);
      Tensor dy1 = dy2;
      MatMulBtAcc(dhidden.data(), params.w1.data(), dy1.data(), len, f, d);
      // Attention output projection: dWo += A^T dY1; dA_flat = dY1 Wo^T.
      MatMulAtAcc(a_flat.data(), dy1.data(), grads.wo.data(), d, len, d);
      Tensor da_flat = Tensor::Zeros({len, d});
      MatMulBtAcc(dy1.data(), params.wo.data(), da_flat.data(), len, d, d);
      // Reshape to [H, L, dh] for the engine.
      Tensor dout = Tensor::Zeros({heads, len, dh});
      for (int h = 0; h < heads; ++h) {
        for (int64_t t = 0; t < len; ++t) {
          std::copy(da_flat.data() + t * d + h * dh, da_flat.data() + t * d + (h + 1) * dh,
                    dout.data() + (static_cast<int64_t>(h) * len + t) * dh);
        }
      }
      douts.push_back(std::move(dout));
      y1s.push_back(std::move(y1));
      dy1s.push_back(std::move(dy1));
    }

    const std::vector<SeqGrads> attn_grads = engine->Backward(douts);

    // Input path: projections and embedding.
    for (size_t s = 0; s < num_seqs; ++s) {
      const int64_t len = config.seqlens[s];
      // Flatten attention grads back to [L, d] / [L, kv_d].
      Tensor dq2 = Tensor::Zeros({len, d});
      Tensor dk2 = Tensor::Zeros({len, kv_d});
      Tensor dv2 = Tensor::Zeros({len, kv_d});
      for (int64_t t = 0; t < len; ++t) {
        for (int h = 0; h < heads; ++h) {
          std::copy(attn_grads[s].dq.data() + (static_cast<int64_t>(h) * len + t) * dh,
                    attn_grads[s].dq.data() + (static_cast<int64_t>(h) * len + t + 1) * dh,
                    dq2.data() + t * d + h * dh);
        }
        for (int g = 0; g < groups; ++g) {
          std::copy(attn_grads[s].dk.data() + (static_cast<int64_t>(g) * len + t) * dh,
                    attn_grads[s].dk.data() + (static_cast<int64_t>(g) * len + t + 1) * dh,
                    dk2.data() + t * kv_d + g * dh);
          std::copy(attn_grads[s].dv.data() + (static_cast<int64_t>(g) * len + t) * dh,
                    attn_grads[s].dv.data() + (static_cast<int64_t>(g) * len + t + 1) * dh,
                    dv2.data() + t * kv_d + g * dh);
        }
      }
      // dWq += X^T dQ2 etc.; dX = dY1 (residual) + dQ2 Wq^T + dK2 Wk^T + dV2 Wv^T.
      MatMulAtAcc(xs[s].data(), dq2.data(), grads.wq.data(), d, len, d);
      MatMulAtAcc(xs[s].data(), dk2.data(), grads.wk.data(), d, len, kv_d);
      MatMulAtAcc(xs[s].data(), dv2.data(), grads.wv.data(), d, len, kv_d);
      Tensor dx = dy1s[s];
      MatMulBtAcc(dq2.data(), params.wq.data(), dx.data(), len, d, d);
      MatMulBtAcc(dk2.data(), params.wk.data(), dx.data(), len, kv_d, d);
      MatMulBtAcc(dv2.data(), params.wv.data(), dx.data(), len, kv_d, d);
      // Embedding grads.
      for (int64_t t = 0; t < len; ++t) {
        float* erow = grads.embed.data() + data[s][static_cast<size_t>(t)] * d;
        const float* dxrow = dx.data() + t * d;
        for (int64_t c = 0; c < d; ++c) {
          erow[c] += dxrow[c];
        }
      }
    }

    // Mean-loss scaling and SGD.
    const float inv_count = 1.0f / static_cast<float>(loss_count);
    for (Tensor* g : {&grads.embed, &grads.wq, &grads.wk, &grads.wv, &grads.wo, &grads.w1,
                      &grads.w2, &grads.unembed}) {
      g->Scale(inv_count);
    }
    params.SgdStep(grads, config.learning_rate);
    losses.push_back(loss_sum / static_cast<double>(loss_count));
  }
  return losses;
}

}  // namespace dcp
