// Hypergraph with 2-dimensional vertex weights and weighted hyperedges, stored in CSR form.
// This is the substrate for the paper's placement formulation (§4.2): vertex weight
// dimension 0 models computation FLOPs, dimension 1 models data bytes, and each hyperedge's
// weight is the byte size of the data block it represents.
#ifndef DCP_HYPERGRAPH_HYPERGRAPH_H_
#define DCP_HYPERGRAPH_HYPERGRAPH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dcp {

using VertexId = int32_t;
using EdgeId = int32_t;
using PartId = int32_t;
using VertexWeight = std::array<double, 2>;  // [compute, data]

class Hypergraph {
 public:
  Hypergraph() = default;

  // --- Construction (call Finalize() once done). ---
  VertexId AddVertex(double compute_weight, double data_weight);
  EdgeId AddEdge(double weight, std::vector<VertexId> pins);
  // Builds the vertex->incident-edge index; must be called before queries.
  void Finalize();

  // --- Queries. ---
  int num_vertices() const { return static_cast<int>(vertex_weights_.size()); }
  int num_edges() const { return static_cast<int>(edge_weights_.size()); }
  bool finalized() const { return finalized_; }

  const VertexWeight& vertex_weight(VertexId v) const {
    return vertex_weights_[static_cast<size_t>(v)];
  }
  double edge_weight(EdgeId e) const { return edge_weights_[static_cast<size_t>(e)]; }

  // Pins (vertices) of edge e.
  std::pair<const VertexId*, const VertexId*> EdgePins(EdgeId e) const;
  int EdgeSize(EdgeId e) const;
  // Edges incident to vertex v.
  std::pair<const EdgeId*, const EdgeId*> VertexEdges(VertexId v) const;
  int VertexDegree(VertexId v) const;

  // Aggregates are computed once in Finalize(); O(1) afterwards. The partitioner hot
  // paths (greedy scoring, FM balance targets, coarsening caps) call these per vertex, so
  // they must not rescan the weight arrays.
  const VertexWeight& TotalWeight() const;
  double TotalEdgeWeight() const;

 private:
  std::vector<VertexWeight> vertex_weights_;
  std::vector<double> edge_weights_;
  std::vector<int64_t> edge_offsets_{0};  // size E+1 into pins_.
  std::vector<VertexId> pins_;
  // Built by Finalize():
  std::vector<int64_t> vertex_offsets_;  // size V+1 into incident_edges_.
  std::vector<EdgeId> incident_edges_;
  VertexWeight total_weight_ = {0.0, 0.0};
  double total_edge_weight_ = 0.0;
  bool finalized_ = false;
};

// A k-way partition: part id per vertex.
using Partition = std::vector<PartId>;

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_HYPERGRAPH_H_
