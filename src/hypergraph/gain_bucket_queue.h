// Bucketed gain priority queue with lazy invalidation, the move-selection structure for
// k-way FM refinement at large k.
//
// Entries are (vertex, target part, gain) keyed into buckets by quantized gain. Each
// vertex has at most one *live* entry: Push() bumps the vertex's generation counter, so
// any older entries for it become stale and are discarded (lazily, on first contact)
// rather than searched for and erased. Each bucket is a lazy max-heap on (gain,
// earliest push), so Pop() returns the live entry with the exact maximum gain (ties
// toward the earliest push) in O(log bucket) — exact-argmax even though buckets
// quantize, and immune to the tied-gain pileups uniform block sizes produce. Every
// stale entry is dropped exactly once, so pops are O(log) amortized instead of O(k)
// per boundary vertex.
//
// The caller keeps keys current: whenever a vertex's best-move gain changes, it either
// re-Push()es (new key) or Invalidate()s the vertex. Stale keys therefore never surface
// from Pop() — the invariant tests/test_refinement.cc checks directly.
#ifndef DCP_HYPERGRAPH_GAIN_BUCKET_QUEUE_H_
#define DCP_HYPERGRAPH_GAIN_BUCKET_QUEUE_H_

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace dcp {

class GainBucketQueue {
 public:
  struct Entry {
    VertexId v = -1;
    PartId to = -1;
    double gain = 0.0;
    uint32_t gen = 0;
    uint64_t seq = 0;  // Global push order; ties on gain pop the earliest push.
  };

  // Prepares the queue for vertices in [0, num_vertices) with gains expected in
  // [-max_abs_gain, +max_abs_gain]. Out-of-range gains are clamped into the boundary
  // buckets; exactness is unaffected because the top-bucket scan compares true gains.
  void Reset(int num_vertices, double max_abs_gain);

  // Inserts (or re-keys) the unique live entry for v. Any previous entry becomes stale.
  void Push(VertexId v, PartId to, double gain);

  // Marks v's live entry (if any) stale without inserting a replacement.
  void Invalidate(VertexId v);

  // Pops the live entry with the maximum gain. Ties go to the earliest push, so the
  // caller's (seed-shuffled) initial push order diversifies tie resolution across seeds
  // while staying fully deterministic for a fixed seed. Returns false when no live
  // entries remain.
  bool Pop(Entry* out);

  size_t live_size() const { return live_; }

  // Current live entry for v, if any. Event-driven callers use these to bump a key in
  // O(1): compare the event's new gain against KeyOf and re-Push only on increase.
  bool HasLive(VertexId v) const { return has_live_[static_cast<size_t>(v)] != 0; }
  double KeyOf(VertexId v) const { return key_[static_cast<size_t>(v)]; }
  PartId TargetOf(VertexId v) const { return to_[static_cast<size_t>(v)]; }

 private:
  int BucketOf(double gain) const;

  std::vector<std::vector<Entry>> buckets_;
  std::vector<uint32_t> gen_;
  std::vector<uint8_t> has_live_;  // Exactly one live entry per flagged vertex.
  std::vector<double> key_;        // Live key per vertex (valid when has_live_).
  std::vector<PartId> to_;         // Live target per vertex (valid when has_live_).
  double lo_ = 0.0;
  double inv_width_ = 0.0;
  uint64_t next_seq_ = 0;
  int top_ = -1;  // Highest bucket that may contain entries.
  size_t live_ = 0;
};

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_GAIN_BUCKET_QUEUE_H_
