#include "hypergraph/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace dcp {

int EdgeConnectivity(const Hypergraph& hg, const Partition& part, int k, EdgeId e) {
  // Edges are small-to-medium; use a stack bitmap for k <= 64, else a vector.
  auto [begin, end] = hg.EdgePins(e);
  if (k <= 64) {
    uint64_t seen = 0;
    for (const VertexId* p = begin; p != end; ++p) {
      seen |= uint64_t{1} << part[static_cast<size_t>(*p)];
    }
    return __builtin_popcountll(seen);
  }
  std::vector<char> seen(static_cast<size_t>(k), 0);
  int count = 0;
  for (const VertexId* p = begin; p != end; ++p) {
    char& flag = seen[static_cast<size_t>(part[static_cast<size_t>(*p)])];
    if (flag == 0) {
      flag = 1;
      ++count;
    }
  }
  return count;
}

double ConnectivityMinusOne(const Hypergraph& hg, const Partition& part, int k) {
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  double total = 0.0;
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    total += hg.edge_weight(e) * (EdgeConnectivity(hg, part, k, e) - 1);
  }
  return total;
}

std::vector<VertexWeight> PartWeights(const Hypergraph& hg, const Partition& part, int k) {
  std::vector<VertexWeight> weights(static_cast<size_t>(k), VertexWeight{0.0, 0.0});
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    const PartId p = part[static_cast<size_t>(v)];
    DCP_CHECK(p >= 0 && p < k);
    weights[static_cast<size_t>(p)][0] += hg.vertex_weight(v)[0];
    weights[static_cast<size_t>(p)][1] += hg.vertex_weight(v)[1];
  }
  return weights;
}

std::array<double, 2> MaxImbalancePerDim(const Hypergraph& hg, const Partition& part, int k) {
  const VertexWeight total = hg.TotalWeight();
  const auto weights = PartWeights(hg, part, k);
  std::array<double, 2> worst = {0.0, 0.0};
  for (int d = 0; d < 2; ++d) {
    const double target = total[static_cast<size_t>(d)] / k;
    if (target <= 0.0) {
      worst[static_cast<size_t>(d)] = 1.0;
      continue;
    }
    for (const VertexWeight& w : weights) {
      worst[static_cast<size_t>(d)] =
          std::max(worst[static_cast<size_t>(d)], w[static_cast<size_t>(d)] / target);
    }
  }
  return worst;
}

double MaxImbalance(const Hypergraph& hg, const Partition& part, int k) {
  const auto per_dim = MaxImbalancePerDim(hg, part, k);
  return std::max(per_dim[0], per_dim[1]);
}

bool IsBalanced(const Hypergraph& hg, const Partition& part, int k,
                const std::array<double, 2>& eps) {
  const auto per_dim = MaxImbalancePerDim(hg, part, k);
  return per_dim[0] <= 1.0 + eps[0] + 1e-9 && per_dim[1] <= 1.0 + eps[1] + 1e-9;
}

}  // namespace dcp
