// Internal building blocks shared between the partitioner translation units. Not part of
// the public API.
#ifndef DCP_HYPERGRAPH_INTERNAL_H_
#define DCP_HYPERGRAPH_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "hypergraph/partitioner.h"

namespace dcp {

// First-fit-decreasing with edge affinity (defined in greedy_partitioner.cc).
Partition GreedyAffinityPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng);

// One coarsening level: clusters of fine vertices and the coarse hypergraph they induce.
struct CoarseLevel {
  Hypergraph coarse;
  std::vector<VertexId> fine_to_coarse;  // size = fine vertex count.
};

// Timestamped flat score accumulator: an entry is live only if its stamp matches the
// current epoch, so clearing between vertices is O(1) instead of O(touched). Each
// parallel scoring task owns one exclusively.
struct ScoreAccumulator {
  std::vector<double> score;
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;
  std::vector<VertexId> touched;  // Candidates scored for the current vertex.
};

// Reusable scratch for CoarsenOnce. A V-cycle coarsens many levels back to back; holding
// these buffers across levels (they only shrink as the graph contracts) removes all
// per-level heap churn from the clustering and edge-dedup loops. `accumulators` holds
// one ScoreAccumulator per scoring chunk — chunk boundaries depend only on the vertex
// count and config.coarsening_grain, never on the thread count, so the parallel scoring
// phase is bit-deterministic for any pool size.
struct CoarseningScratch {
  std::vector<VertexId> cluster;
  std::vector<VertexWeight> cluster_weight;
  std::vector<VertexId> order;
  std::vector<VertexId> preference;  // Per vertex: preferred merge partner (or -1).
  std::vector<uint8_t> retry;        // Re-score in the next matching round.
  std::vector<ScoreAccumulator> accumulators;
  std::vector<VertexId> compact;   // Cluster id -> coarse vertex id.
  std::vector<VertexId> pin_buf;   // Remapped pins of the current edge.
  // Flat coarse-edge store for sort-based dedup of identical pin sets.
  std::vector<int64_t> edge_offsets;
  std::vector<VertexId> edge_pins;
  std::vector<double> edge_weights;
  std::vector<uint64_t> edge_hashes;
  std::vector<int32_t> edge_order;
};

// Heavy-connectivity clustering pass (defined in coarsening.cc). Respects the per-cluster
// weight cap from `config`. Returns nullopt-equivalent empty result if no contraction was
// possible (coarse vertex count == fine vertex count). When `restrict_part` is non-null
// (size = num_vertices), vertices are only merged with vertices of the same part, so an
// existing partition projects losslessly onto the coarse graph — the building block of
// iterated V-cycles that re-coarsen around the incumbent solution.
CoarseLevel CoarsenOnce(const Hypergraph& hg, const PartitionConfig& config, Rng& rng,
                        CoarseningScratch& scratch,
                        const Partition* restrict_part = nullptr);

// Portfolio initial partitioning on the (coarsest) hypergraph (initial_partition.cc).
Partition ComputeInitialPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng);

// Greedy K-way FM-style boundary refinement, in place (refinement.cc). Returns the
// improvement in connectivity cost (>= 0).
double FmRefine(const Hypergraph& hg, const PartitionConfig& config, Partition& part,
                Rng& rng);

// Packs whole connected components (first-fit-decreasing on the dominant weight
// dimension), then rebalances/refines. When the batch decomposes into many independent
// sequences this finds the zero-communication data-parallel-style placement directly
// (paper Fig. 5b/5c territory). Defined in initial_partition.cc.
Partition ComponentPackingPartition(const Hypergraph& hg, const PartitionConfig& config,
                                    Rng& rng);

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_INTERNAL_H_
