// Internal building blocks shared between the partitioner translation units. Not part of
// the public API.
#ifndef DCP_HYPERGRAPH_INTERNAL_H_
#define DCP_HYPERGRAPH_INTERNAL_H_

#include <vector>

#include "common/rng.h"
#include "hypergraph/partitioner.h"

namespace dcp {

// First-fit-decreasing with edge affinity (defined in greedy_partitioner.cc).
Partition GreedyAffinityPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng);

// One coarsening level: clusters of fine vertices and the coarse hypergraph they induce.
struct CoarseLevel {
  Hypergraph coarse;
  std::vector<VertexId> fine_to_coarse;  // size = fine vertex count.
};

// Heavy-connectivity clustering pass (defined in coarsening.cc). Respects the per-cluster
// weight cap from `config`. Returns nullopt-equivalent empty result if no contraction was
// possible (coarse vertex count == fine vertex count).
CoarseLevel CoarsenOnce(const Hypergraph& hg, const PartitionConfig& config, Rng& rng);

// Portfolio initial partitioning on the (coarsest) hypergraph (initial_partition.cc).
Partition ComputeInitialPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng);

// Greedy K-way FM-style boundary refinement, in place (refinement.cc). Returns the
// improvement in connectivity cost (>= 0).
double FmRefine(const Hypergraph& hg, const PartitionConfig& config, Partition& part,
                Rng& rng);

// Packs whole connected components (first-fit-decreasing on the dominant weight
// dimension), then rebalances/refines. When the batch decomposes into many independent
// sequences this finds the zero-communication data-parallel-style placement directly
// (paper Fig. 5b/5c territory). Defined in initial_partition.cc.
Partition ComponentPackingPartition(const Hypergraph& hg, const PartitionConfig& config,
                                    Rng& rng);

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_INTERNAL_H_
