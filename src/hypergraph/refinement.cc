// K-way FM refinement on the connectivity-minus-one objective, driven by a bucketed
// gain priority queue (large-k hot path).
//
// Gains are not recomputed per candidate move: a KWayGainState maintains the exact gain
// of moving any vertex to any part (see gain_state.h), updated incrementally on Apply.
// Two structural properties keep the per-move work independent of k:
//
//  - Candidate targets are the vertex's *adjacent* parts (maintained exactly by the gain
//    state) plus the least-loaded part as the balance escape hatch. A non-adjacent
//    target has C(v, b) = 0, so its gain R - W is never positive; scanning all k parts
//    per vertex — the old inner loop — only ever found extra zero-gain balance moves,
//    which the least-loaded candidate covers.
//  - Move selection pops a GainBucketQueue (lazy invalidation, exact-argmax pops) keyed
//    by each boundary vertex's current best gain. After every applied move, the gain
//    state reports each gain INCREASE as an O(1) event and the affected key is bumped;
//    decreases are left in place and corrected when the entry pops (revalidation). Pops
//    are O(1) amortized in the queue instead of O(k) per boundary vertex.
//
// A rebalance sweep first fixes infeasible inputs by moving vertices out of overloaded
// parts at minimal cost; its full-row scans use the vectorized kernel in simd.h.
#include <algorithm>
#include <limits>

#include "common/check.h"
#include "hypergraph/gain_bucket_queue.h"
#include "hypergraph/gain_state.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Below kLargeKThreshold BestMove scans every part: the O(k) scan is cheap, and the
// zero-gain balance moves it finds toward arbitrary parts measurably improve small-k
// quality (the queue-driven loop itself stays, its best-first order helps at every k).

// A candidate move for one vertex: target part, exact gain, and whether it strictly
// improves the pairwise balance (the eligibility criterion for zero-gain moves).
struct Move {
  PartId to = -1;
  double gain = 0.0;
  bool improves_balance = false;

  bool Eligible() const { return to >= 0 && (gain > 0.0 || improves_balance); }
};

class RefinementState {
 public:
  RefinementState(const Hypergraph& hg, const PartitionConfig& config, Partition& part)
      : hg_(hg), k_(config.k), gains_(hg, config.k, part) {
    const int stride = gains_.stride();
    // Per-part loads in padded SoA rows; padding is +inf so vectorized feasibility
    // compares mask the padded lanes out.
    load0_.assign(static_cast<size_t>(stride), kInf);
    load1_.assign(static_cast<size_t>(stride), kInf);
    const std::vector<VertexWeight> loads = PartWeights(hg, part, k_);
    for (PartId p = 0; p < k_; ++p) {
      load0_[static_cast<size_t>(p)] = loads[static_cast<size_t>(p)][0];
      load1_[static_cast<size_t>(p)] = loads[static_cast<size_t>(p)][1];
    }
    scratch_.assign(static_cast<size_t>(stride), 0.0);
    const VertexWeight& total = hg.TotalWeight();
    target_ = {total[0] / k_, total[1] / k_};
    limit_ = {(1.0 + config.eps[0]) * target_[0] + 1e-9,
              (1.0 + config.eps[1]) * target_[1] + 1e-9};
    RescanMinLoadedPart();
  }

  bool IsBoundary(VertexId v) const { return gains_.IsBoundary(v); }
  double MoveGain(VertexId v, PartId b) const { return gains_.Gain(v, b); }

  bool FitsIn(VertexId v, PartId b) const {
    const VertexWeight& w = hg_.vertex_weight(v);
    return load0_[static_cast<size_t>(b)] + w[0] <= limit_[0] &&
           load1_[static_cast<size_t>(b)] + w[1] <= limit_[1];
  }

  double NormLoad(PartId p) const {
    return std::max(
        target_[0] > 0 ? load0_[static_cast<size_t>(p)] / target_[0] : 0.0,
        target_[1] > 0 ? load1_[static_cast<size_t>(p)] / target_[1] : 0.0);
  }

  // Strictly improves the pairwise balance between v's part and b.
  bool ImprovesBalance(VertexId v, PartId b) const {
    const PartId a = part()[static_cast<size_t>(v)];
    const VertexWeight& w = hg_.vertex_weight(v);
    const double before = std::max(NormLoad(a), NormLoad(b));
    const double after_a = std::max(
        target_[0] > 0 ? (load0_[static_cast<size_t>(a)] - w[0]) / target_[0] : 0.0,
        target_[1] > 0 ? (load1_[static_cast<size_t>(a)] - w[1]) / target_[1] : 0.0);
    const double after_b = std::max(
        target_[0] > 0 ? (load0_[static_cast<size_t>(b)] + w[0]) / target_[0] : 0.0,
        target_[1] > 0 ? (load1_[static_cast<size_t>(b)] + w[1]) / target_[1] : 0.0);
    return std::max(after_a, after_b) + 1e-12 < before;
  }

  // Best eligible FM move for v: maximum gain over the candidate parts, requiring
  // feasibility and gain >= 0 (zero-gain moves must strictly improve balance). Ties
  // prefer balance-improving moves, then the lowest part id, so the result is
  // independent of candidate order. At small k every part is a candidate (the scan is
  // cheap and zero-gain balance moves toward any part matter); at large k candidates
  // are the adjacent parts plus the least-loaded part — positive gains always sit on
  // adjacent parts, and the least-loaded part stands in for the rest as the balance
  // escape hatch.
  Move BestMove(VertexId v) {
    const PartId a = part()[static_cast<size_t>(v)];
    Move best;
    auto consider = [&](PartId b) {
      if (b == a) {
        return;
      }
      // Reject on gain first: it is one load + add, while feasibility and balance read
      // four load entries — and most candidates lose on gain.
      const double gain = MoveGain(v, b);
      if (gain < 0.0 || (gain < best.gain && best.to >= 0) || !FitsIn(v, b)) {
        return;
      }
      const bool improves = ImprovesBalance(v, b);
      if (gain == 0.0 && !improves) {
        return;
      }
      if (best.to < 0 || gain > best.gain ||
          (improves && !best.improves_balance) ||
          (improves == best.improves_balance && b < best.to)) {
        best = Move{b, gain, improves};
      }
    };
    if (k_ < kLargeKThreshold) {
      for (PartId b = 0; b < k_; ++b) {
        consider(b);
      }
    } else {
      gains_.ForEachAdjacentPart(v, consider);
      consider(min_loaded_part_);
    }
    return best;
  }

  // Best feasible move over ALL parts regardless of gain sign (the rebalance sweep's
  // selection), via one vectorized masked-argmax row scan.
  Move BestMoveFull(VertexId v) {
    const PartId a = part()[static_cast<size_t>(v)];
    const VertexWeight& w = hg_.vertex_weight(v);
    // Exclude the source part by making it temporarily infeasible.
    const double saved = load0_[static_cast<size_t>(a)];
    load0_[static_cast<size_t>(a)] = kInf;
    double gain = 0.0;
    const int b = simd::BestFeasibleMove(gains_.ConnectRow(v), gains_.GainBase(v),
                                         load0_.data(), load1_.data(), w[0], w[1],
                                         limit_[0], limit_[1], gains_.stride(),
                                         scratch_.data(), &gain);
    load0_[static_cast<size_t>(a)] = saved;
    if (b < 0) {
      return Move{};
    }
    return Move{b, gain, false};
  }

  void Apply(VertexId v, PartId b) {
    const PartId a = part()[static_cast<size_t>(v)];
    gains_.Apply(v, b);
    const VertexWeight& w = hg_.vertex_weight(v);
    load0_[static_cast<size_t>(a)] -= w[0];
    load1_[static_cast<size_t>(a)] -= w[1];
    load0_[static_cast<size_t>(b)] += w[0];
    load1_[static_cast<size_t>(b)] += w[1];
    // Exact incremental argmin maintenance: only a shrank (may beat the cached min) and
    // only b grew (forces a rescan only if it WAS the cached min).
    if (b == min_loaded_part_) {
      RescanMinLoadedPart();
    } else if (NormLoad(a) < NormLoad(min_loaded_part_)) {
      min_loaded_part_ = a;
    }
  }

  bool PartOverloaded(PartId p) const {
    return load0_[static_cast<size_t>(p)] > limit_[0] ||
           load1_[static_cast<size_t>(p)] > limit_[1];
  }

  bool AnyOverloaded() const {
    for (PartId p = 0; p < k_; ++p) {
      if (PartOverloaded(p)) {
        return true;
      }
    }
    return false;
  }

  int k() const { return k_; }
  const Partition& part() const { return gains_.part(); }
  KWayGainState& gains() { return gains_; }

 private:
  void RescanMinLoadedPart() {
    const double i0 = target_[0] > 0 ? 1.0 / target_[0] : 0.0;
    const double i1 = target_[1] > 0 ? 1.0 / target_[1] : 0.0;
    const int stride = gains_.stride();
    for (int p = 0; p < stride; ++p) {
      const double n0 = p < k_ ? load0_[static_cast<size_t>(p)] * i0 : kInf;
      const double n1 = p < k_ ? load1_[static_cast<size_t>(p)] * i1 : kInf;
      scratch_[static_cast<size_t>(p)] = n0 > n1 ? n0 : n1;
    }
    min_loaded_part_ = simd::RowArgMin(scratch_.data(), stride);
  }

  const Hypergraph& hg_;
  const int k_;
  KWayGainState gains_;
  std::vector<double> load0_;   // Padded per-part loads, dim 0 (compute).
  std::vector<double> load1_;   // Padded per-part loads, dim 1 (data).
  std::vector<double> scratch_; // Padded row scratch for vectorized scans.
  std::array<double, 2> target_;
  std::array<double, 2> limit_;
  PartId min_loaded_part_ = 0;
};

// Moves vertices out of overloaded parts at minimum connectivity cost until feasible (or
// no further progress). Bounded by 2 * num_vertices moves. Only vertices that currently
// live in an overloaded part are candidates; the list is regathered per sweep since moves
// drain the overloaded parts.
void RebalancePass(const Hypergraph& hg, RefinementState& state, Rng& rng) {
  if (!state.AnyOverloaded()) {
    return;
  }
  int moves_left = 2 * hg.num_vertices();
  std::vector<VertexId> candidates;
  bool progress = true;
  while (state.AnyOverloaded() && progress && moves_left > 0) {
    progress = false;
    candidates.clear();
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      if (state.PartOverloaded(state.part()[static_cast<size_t>(v)])) {
        candidates.push_back(v);
      }
    }
    rng.Shuffle(candidates);
    for (VertexId v : candidates) {
      const PartId a = state.part()[static_cast<size_t>(v)];
      if (!state.PartOverloaded(a)) {
        continue;  // Earlier moves this sweep already relieved a.
      }
      const Move move = state.BestMoveFull(v);
      if (move.to >= 0) {
        state.Apply(v, move.to);
        state.gains().ClearEvents();  // Rebalance selection ignores the event stream.
        progress = true;
        if (--moves_left == 0) {
          return;
        }
      }
    }
  }
}

}  // namespace

double FmRefine(const Hypergraph& hg, const PartitionConfig& config, Partition& part,
                Rng& rng) {
  DCP_CHECK(hg.finalized());
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  if (config.k <= 1 || hg.num_vertices() == 0) {
    return 0.0;
  }
  RefinementState state(hg, config, part);
  RebalancePass(hg, state, rng);

  double total_improvement = 0.0;
  std::vector<VertexId> worklist;

  GainBucketQueue queue;
  // Each vertex moves at most once per pass (stamped below): without the cap, chains of
  // tiny zero-gain balance improvements can churn through orders of magnitude more moves
  // than they are worth. Re-visiting a vertex is what the next pass is for.
  std::vector<uint64_t> moved_stamp(static_cast<size_t>(hg.num_vertices()), 0);
  uint64_t pass_epoch = 0;
  for (int pass = 0; pass < config.refinement_passes; ++pass) {
    worklist.clear();
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      if (state.IsBoundary(v)) {
        worklist.push_back(v);
      }
    }
    if (worklist.empty()) {
      break;
    }
    // The shuffle only diversifies queue tie-bucketing across seeds; selection itself is
    // by exact gain.
    rng.Shuffle(worklist);
    state.gains().activated().clear();
    state.gains().ClearEvents();
    queue.Reset(hg.num_vertices(), state.gains().MaxAbsGain());
    ++pass_epoch;
    for (VertexId v : worklist) {
      const Move move = state.BestMove(v);
      if (move.Eligible()) {
        queue.Push(v, move.to, move.gain);
      }
    }

    double pass_improvement = 0.0;
    GainBucketQueue::Entry entry;
    while (queue.Pop(&entry)) {
      // Revalidate: feasibility and balance depend on loads, which change without
      // touching the popped vertex's gain terms. A mismatch means the cached key was
      // stale — re-key at the true value and keep popping.
      const Move move = state.BestMove(entry.v);
      if (!move.Eligible()) {
        continue;
      }
      if (move.gain != entry.gain || move.to != entry.to) {
        queue.Push(entry.v, move.to, move.gain);
        continue;
      }
      state.Apply(entry.v, move.to);
      pass_improvement += move.gain;
      moved_stamp[static_cast<size_t>(entry.v)] = pass_epoch;

      // Bump exactly the keys the move could have raised, O(1) per event, so no live
      // entry is ever under-keyed (decreases are corrected by the revalidation above).
      // Admission is optimistic — feasibility is only pre-checked for zero-gain moves —
      // because the revalidation rejects cheaply at pop time.
      KWayGainState& gains = state.gains();
      for (const auto& [u, w] : gains.removal_events()) {
        if (moved_stamp[static_cast<size_t>(u)] == pass_epoch) {
          continue;
        }
        if (queue.HasLive(u)) {
          // R(u) rose by w: every target's gain shifts up uniformly, target unchanged.
          queue.Push(u, queue.TargetOf(u), queue.KeyOf(u) + w);
        } else {
          const Move m = state.BestMove(u);  // Rare: re-admit from scratch.
          if (m.Eligible()) {
            queue.Push(u, m.to, m.gain);
          }
        }
      }
      for (const auto& [u, b] : gains.connect_events()) {
        if (moved_stamp[static_cast<size_t>(u)] == pass_epoch) {
          continue;
        }
        const double gain = state.MoveGain(u, b);
        if (queue.HasLive(u)) {
          if (gain > queue.KeyOf(u)) {
            queue.Push(u, b, gain);
          }
        } else if (gain > 0.0 ||
                   (gain == 0.0 && state.FitsIn(u, b) && state.ImprovesBalance(u, b))) {
          queue.Push(u, b, gain);
        }
      }
      gains.ClearEvents();
      gains.activated().clear();  // Connect events already cover boundary arrivals.
    }
    total_improvement += pass_improvement;
    if (pass_improvement <= 0.0) {
      break;
    }
  }
  return total_improvement;
}

}  // namespace dcp
