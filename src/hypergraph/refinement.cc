// Greedy K-way FM-style refinement on the connectivity-minus-one objective.
//
// Maintains per-edge pin counts per part (phi), so the gain of moving a vertex v from part
// a to part b is computed exactly:
//   gain = sum_e w_e * ( [phi(e,a) == 1 && phi(e,b) > 0]  -  [phi(e,a) > 1 && phi(e,b) == 0] )
// Each pass visits boundary vertices in random order and applies the best feasible
// positive-gain move (or a zero-gain balance-improving move). A rebalance sweep first fixes
// infeasible inputs by moving vertices out of overloaded parts at minimal cost.
#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

class RefinementState {
 public:
  RefinementState(const Hypergraph& hg, const PartitionConfig& config, Partition& part)
      : hg_(hg), config_(config), part_(part), k_(config.k) {
    phi_.assign(static_cast<size_t>(hg.num_edges()) * static_cast<size_t>(k_), 0);
    for (EdgeId e = 0; e < hg.num_edges(); ++e) {
      auto [pbegin, pend] = hg.EdgePins(e);
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        ++PhiRef(e, part[static_cast<size_t>(*pp)]);
      }
    }
    loads_ = PartWeights(hg, part, k_);
    const VertexWeight total = hg.TotalWeight();
    target_ = {total[0] / k_, total[1] / k_};
    limit_ = {(1.0 + config.eps[0]) * target_[0] + 1e-9,
              (1.0 + config.eps[1]) * target_[1] + 1e-9};
  }

  int32_t Phi(EdgeId e, PartId p) const {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(k_) + static_cast<size_t>(p)];
  }

  bool IsBoundary(VertexId v) const {
    auto [ebegin, eend] = hg_.VertexEdges(v);
    const PartId a = part_[static_cast<size_t>(v)];
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      auto [pbegin, pend] = hg_.EdgePins(*ep);
      if (Phi(*ep, a) < pend - pbegin) {
        return true;  // Some pin of this edge lives elsewhere.
      }
    }
    return false;
  }

  // Gain of moving v to part b (b != current part).
  double MoveGain(VertexId v, PartId b) const {
    const PartId a = part_[static_cast<size_t>(v)];
    double gain = 0.0;
    auto [ebegin, eend] = hg_.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      const double w = hg_.edge_weight(*ep);
      const int32_t pa = Phi(*ep, a);
      const int32_t pb = Phi(*ep, b);
      if (pa == 1 && pb > 0) {
        gain += w;
      } else if (pa > 1 && pb == 0) {
        gain -= w;
      }
    }
    return gain;
  }

  bool FitsIn(VertexId v, PartId b) const {
    const VertexWeight& w = hg_.vertex_weight(v);
    const auto& load = loads_[static_cast<size_t>(b)];
    return load[0] + w[0] <= limit_[0] && load[1] + w[1] <= limit_[1];
  }

  double NormLoad(PartId p) const {
    const auto& load = loads_[static_cast<size_t>(p)];
    return std::max(target_[0] > 0 ? load[0] / target_[0] : 0.0,
                    target_[1] > 0 ? load[1] / target_[1] : 0.0);
  }

  // Strictly improves the pairwise balance between v's part and b.
  bool ImprovesBalance(VertexId v, PartId b) const {
    const PartId a = part_[static_cast<size_t>(v)];
    const VertexWeight& w = hg_.vertex_weight(v);
    const double before = std::max(NormLoad(a), NormLoad(b));
    const auto& la = loads_[static_cast<size_t>(a)];
    const auto& lb = loads_[static_cast<size_t>(b)];
    const double after_a = std::max(target_[0] > 0 ? (la[0] - w[0]) / target_[0] : 0.0,
                                    target_[1] > 0 ? (la[1] - w[1]) / target_[1] : 0.0);
    const double after_b = std::max(target_[0] > 0 ? (lb[0] + w[0]) / target_[0] : 0.0,
                                    target_[1] > 0 ? (lb[1] + w[1]) / target_[1] : 0.0);
    return std::max(after_a, after_b) + 1e-12 < before;
  }

  void Apply(VertexId v, PartId b) {
    const PartId a = part_[static_cast<size_t>(v)];
    DCP_CHECK_NE(a, b);
    auto [ebegin, eend] = hg_.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      --PhiRef(*ep, a);
      ++PhiRef(*ep, b);
      DCP_DCHECK(Phi(*ep, a) >= 0);
    }
    const VertexWeight& w = hg_.vertex_weight(v);
    loads_[static_cast<size_t>(a)][0] -= w[0];
    loads_[static_cast<size_t>(a)][1] -= w[1];
    loads_[static_cast<size_t>(b)][0] += w[0];
    loads_[static_cast<size_t>(b)][1] += w[1];
    part_[static_cast<size_t>(v)] = b;
  }

  bool PartOverloaded(PartId p) const {
    const auto& load = loads_[static_cast<size_t>(p)];
    return load[0] > limit_[0] || load[1] > limit_[1];
  }

  bool AnyOverloaded() const {
    for (PartId p = 0; p < k_; ++p) {
      if (PartOverloaded(p)) {
        return true;
      }
    }
    return false;
  }

  int k() const { return k_; }
  const Partition& part() const { return part_; }

 private:
  int32_t& PhiRef(EdgeId e, PartId p) {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(k_) + static_cast<size_t>(p)];
  }

  const Hypergraph& hg_;
  const PartitionConfig& config_;
  Partition& part_;
  const int k_;
  std::vector<int32_t> phi_;
  std::vector<VertexWeight> loads_;
  std::array<double, 2> target_;
  std::array<double, 2> limit_;
};

// Moves vertices out of overloaded parts at minimum connectivity cost until feasible (or no
// further progress). Bounded by 2 * num_vertices moves.
void RebalancePass(const Hypergraph& hg, RefinementState& state, Rng& rng) {
  if (!state.AnyOverloaded()) {
    return;
  }
  std::vector<VertexId> order(static_cast<size_t>(hg.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  int moves_left = 2 * hg.num_vertices();
  bool progress = true;
  while (state.AnyOverloaded() && progress && moves_left > 0) {
    progress = false;
    for (VertexId v : order) {
      const PartId a = state.part()[static_cast<size_t>(v)];
      if (!state.PartOverloaded(a)) {
        continue;
      }
      PartId best = -1;
      double best_gain = -std::numeric_limits<double>::max();
      for (PartId b = 0; b < state.k(); ++b) {
        if (b == a || !state.FitsIn(v, b)) {
          continue;
        }
        const double gain = state.MoveGain(v, b);
        if (gain > best_gain) {
          best_gain = gain;
          best = b;
        }
      }
      if (best >= 0) {
        state.Apply(v, best);
        progress = true;
        if (--moves_left == 0) {
          return;
        }
      }
    }
  }
}

}  // namespace

double FmRefine(const Hypergraph& hg, const PartitionConfig& config, Partition& part,
                Rng& rng) {
  DCP_CHECK(hg.finalized());
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  if (config.k <= 1 || hg.num_vertices() == 0) {
    return 0.0;
  }
  RefinementState state(hg, config, part);
  RebalancePass(hg, state, rng);

  double total_improvement = 0.0;
  std::vector<VertexId> order(static_cast<size_t>(hg.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < config.refinement_passes; ++pass) {
    rng.Shuffle(order);
    double pass_improvement = 0.0;
    for (VertexId v : order) {
      if (!state.IsBoundary(v)) {
        continue;
      }
      const PartId a = state.part()[static_cast<size_t>(v)];
      PartId best = -1;
      double best_gain = 0.0;
      bool best_improves_balance = false;
      for (PartId b = 0; b < state.k(); ++b) {
        if (b == a || !state.FitsIn(v, b)) {
          continue;
        }
        const double gain = state.MoveGain(v, b);
        if (gain < 0.0) {
          continue;
        }
        const bool improves_balance = state.ImprovesBalance(v, b);
        if (gain == 0.0 && !improves_balance) {
          continue;
        }
        if (best < 0 || gain > best_gain ||
            (gain == best_gain && improves_balance && !best_improves_balance)) {
          best = b;
          best_gain = gain;
          best_improves_balance = improves_balance;
        }
      }
      if (best >= 0 && (best_gain > 0.0 || best_improves_balance)) {
        state.Apply(v, best);
        pass_improvement += best_gain;
      }
    }
    total_improvement += pass_improvement;
    if (pass_improvement <= 0.0) {
      break;
    }
  }
  return total_improvement;
}

}  // namespace dcp
