// Greedy K-way FM-style refinement on the connectivity-minus-one objective.
//
// Gains are not recomputed per candidate move: a KWayGainState maintains the exact gain
// of moving any vertex to any part (see gain_state.h), updated incrementally on Apply.
// Each pass shuffles an explicit worklist of the current boundary vertices (an O(1)
// membership query on the maintained cut-edge counts) and applies the best feasible
// positive-gain move, or a zero-gain balance-improving move. A rebalance sweep first
// fixes infeasible inputs by moving vertices out of overloaded parts at minimal cost,
// visiting only the vertices that currently live in an overloaded part.
#include <algorithm>
#include <limits>

#include "common/check.h"
#include "hypergraph/gain_state.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

class RefinementState {
 public:
  RefinementState(const Hypergraph& hg, const PartitionConfig& config, Partition& part)
      : hg_(hg), k_(config.k), gains_(hg, config.k, part) {
    loads_ = PartWeights(hg, part, k_);
    const VertexWeight& total = hg.TotalWeight();
    target_ = {total[0] / k_, total[1] / k_};
    limit_ = {(1.0 + config.eps[0]) * target_[0] + 1e-9,
              (1.0 + config.eps[1]) * target_[1] + 1e-9};
  }

  bool IsBoundary(VertexId v) const { return gains_.IsBoundary(v); }
  double MoveGain(VertexId v, PartId b) const { return gains_.Gain(v, b); }

  bool FitsIn(VertexId v, PartId b) const {
    const VertexWeight& w = hg_.vertex_weight(v);
    const auto& load = loads_[static_cast<size_t>(b)];
    return load[0] + w[0] <= limit_[0] && load[1] + w[1] <= limit_[1];
  }

  double NormLoad(PartId p) const {
    const auto& load = loads_[static_cast<size_t>(p)];
    return std::max(target_[0] > 0 ? load[0] / target_[0] : 0.0,
                    target_[1] > 0 ? load[1] / target_[1] : 0.0);
  }

  // Strictly improves the pairwise balance between v's part and b.
  bool ImprovesBalance(VertexId v, PartId b) const {
    const PartId a = part()[static_cast<size_t>(v)];
    const VertexWeight& w = hg_.vertex_weight(v);
    const double before = std::max(NormLoad(a), NormLoad(b));
    const auto& la = loads_[static_cast<size_t>(a)];
    const auto& lb = loads_[static_cast<size_t>(b)];
    const double after_a = std::max(target_[0] > 0 ? (la[0] - w[0]) / target_[0] : 0.0,
                                    target_[1] > 0 ? (la[1] - w[1]) / target_[1] : 0.0);
    const double after_b = std::max(target_[0] > 0 ? (lb[0] + w[0]) / target_[0] : 0.0,
                                    target_[1] > 0 ? (lb[1] + w[1]) / target_[1] : 0.0);
    return std::max(after_a, after_b) + 1e-12 < before;
  }

  void Apply(VertexId v, PartId b) {
    const PartId a = part()[static_cast<size_t>(v)];
    gains_.Apply(v, b);
    const VertexWeight& w = hg_.vertex_weight(v);
    loads_[static_cast<size_t>(a)][0] -= w[0];
    loads_[static_cast<size_t>(a)][1] -= w[1];
    loads_[static_cast<size_t>(b)][0] += w[0];
    loads_[static_cast<size_t>(b)][1] += w[1];
  }

  bool PartOverloaded(PartId p) const {
    const auto& load = loads_[static_cast<size_t>(p)];
    return load[0] > limit_[0] || load[1] > limit_[1];
  }

  bool AnyOverloaded() const {
    for (PartId p = 0; p < k_; ++p) {
      if (PartOverloaded(p)) {
        return true;
      }
    }
    return false;
  }

  int k() const { return k_; }
  const Partition& part() const { return gains_.part(); }
  std::vector<VertexId>& Activated() { return gains_.activated(); }

 private:
  const Hypergraph& hg_;
  const int k_;
  KWayGainState gains_;
  std::vector<VertexWeight> loads_;
  std::array<double, 2> target_;
  std::array<double, 2> limit_;
};

// Moves vertices out of overloaded parts at minimum connectivity cost until feasible (or
// no further progress). Bounded by 2 * num_vertices moves. Only vertices that currently
// live in an overloaded part are candidates; the list is regathered per sweep since moves
// drain the overloaded parts.
void RebalancePass(const Hypergraph& hg, RefinementState& state, Rng& rng) {
  if (!state.AnyOverloaded()) {
    return;
  }
  int moves_left = 2 * hg.num_vertices();
  std::vector<VertexId> candidates;
  bool progress = true;
  while (state.AnyOverloaded() && progress && moves_left > 0) {
    progress = false;
    candidates.clear();
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      if (state.PartOverloaded(state.part()[static_cast<size_t>(v)])) {
        candidates.push_back(v);
      }
    }
    rng.Shuffle(candidates);
    for (VertexId v : candidates) {
      const PartId a = state.part()[static_cast<size_t>(v)];
      if (!state.PartOverloaded(a)) {
        continue;  // Earlier moves this sweep already relieved a.
      }
      PartId best = -1;
      double best_gain = -std::numeric_limits<double>::max();
      for (PartId b = 0; b < state.k(); ++b) {
        if (b == a || !state.FitsIn(v, b)) {
          continue;
        }
        const double gain = state.MoveGain(v, b);
        if (gain > best_gain) {
          best_gain = gain;
          best = b;
        }
      }
      if (best >= 0) {
        state.Apply(v, best);
        progress = true;
        if (--moves_left == 0) {
          return;
        }
      }
    }
  }
}

}  // namespace

double FmRefine(const Hypergraph& hg, const PartitionConfig& config, Partition& part,
                Rng& rng) {
  DCP_CHECK(hg.finalized());
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  if (config.k <= 1 || hg.num_vertices() == 0) {
    return 0.0;
  }
  RefinementState state(hg, config, part);
  RebalancePass(hg, state, rng);

  double total_improvement = 0.0;
  std::vector<VertexId> worklist;
  for (int pass = 0; pass < config.refinement_passes; ++pass) {
    worklist.clear();
    for (VertexId v = 0; v < hg.num_vertices(); ++v) {
      if (state.IsBoundary(v)) {
        worklist.push_back(v);
      }
    }
    if (worklist.empty()) {
      break;
    }
    rng.Shuffle(worklist);
    state.Activated().clear();
    double pass_improvement = 0.0;
    // The worklist grows mid-pass: moves can flip internal vertices onto the boundary,
    // and those are appended so the pass chases the moving boundary to convergence.
    for (size_t idx = 0; idx < worklist.size(); ++idx) {
      const VertexId v = worklist[idx];
      if (!state.IsBoundary(v)) {
        continue;  // Moved off the boundary by an earlier move this pass.
      }
      const PartId a = state.part()[static_cast<size_t>(v)];
      PartId best = -1;
      double best_gain = 0.0;
      bool best_improves_balance = false;
      for (PartId b = 0; b < state.k(); ++b) {
        if (b == a || !state.FitsIn(v, b)) {
          continue;
        }
        const double gain = state.MoveGain(v, b);
        if (gain < 0.0) {
          continue;
        }
        const bool improves_balance = state.ImprovesBalance(v, b);
        if (gain == 0.0 && !improves_balance) {
          continue;
        }
        if (best < 0 || gain > best_gain ||
            (gain == best_gain && improves_balance && !best_improves_balance)) {
          best = b;
          best_gain = gain;
          best_improves_balance = improves_balance;
        }
      }
      if (best >= 0 && (best_gain > 0.0 || best_improves_balance)) {
        state.Apply(v, best);
        pass_improvement += best_gain;
        if (!state.Activated().empty()) {
          worklist.insert(worklist.end(), state.Activated().begin(),
                          state.Activated().end());
          state.Activated().clear();
        }
      }
    }
    total_improvement += pass_improvement;
    if (pass_improvement <= 0.0) {
      break;
    }
  }
  return total_improvement;
}

}  // namespace dcp
