#include "hypergraph/gain_bucket_queue.h"

#include <algorithm>

#include "common/check.h"

namespace dcp {
namespace {

// Enough resolution that same-bucket entries are near-ties; buckets keep the per-bucket
// heaps small, so pushes and pops stay cheap even with very large boundaries.
constexpr int kNumBuckets = 192;

// Max-heap order on (gain, earliest push): the heap top is the exact in-bucket argmax.
// A plain in-bucket scan would be O(bucket) per pop, which goes quadratic on instances
// with many tied gains (uniform block sizes produce exactly that).
bool HeapLess(const GainBucketQueue::Entry& a, const GainBucketQueue::Entry& b) {
  if (a.gain != b.gain) {
    return a.gain < b.gain;
  }
  return a.seq > b.seq;
}

}  // namespace

void GainBucketQueue::Reset(int num_vertices, double max_abs_gain) {
  if (buckets_.size() != static_cast<size_t>(kNumBuckets)) {
    buckets_.resize(static_cast<size_t>(kNumBuckets));
  }
  for (auto& bucket : buckets_) {
    bucket.clear();
  }
  gen_.assign(static_cast<size_t>(num_vertices), 0);
  has_live_.assign(static_cast<size_t>(num_vertices), 0);
  key_.assign(static_cast<size_t>(num_vertices), 0.0);
  to_.assign(static_cast<size_t>(num_vertices), -1);
  const double range = max_abs_gain > 0.0 ? max_abs_gain : 1.0;
  lo_ = -range;
  inv_width_ = kNumBuckets / (2.0 * range);
  top_ = -1;
  live_ = 0;
  next_seq_ = 0;
}

int GainBucketQueue::BucketOf(double gain) const {
  const double scaled = (gain - lo_) * inv_width_;
  if (scaled <= 0.0) {
    return 0;
  }
  if (scaled >= kNumBuckets - 1) {
    return kNumBuckets - 1;
  }
  return static_cast<int>(scaled);
}

void GainBucketQueue::Push(VertexId v, PartId to, double gain) {
  uint32_t& gen = gen_[static_cast<size_t>(v)];
  ++gen;  // Stales any previous entry for v.
  const int bucket = BucketOf(gain);
  std::vector<Entry>& heap = buckets_[static_cast<size_t>(bucket)];
  heap.push_back(Entry{v, to, gain, gen, next_seq_++});
  std::push_heap(heap.begin(), heap.end(), HeapLess);
  top_ = std::max(top_, bucket);
  uint8_t& has = has_live_[static_cast<size_t>(v)];
  live_ += has ? 0 : 1;
  has = 1;
  key_[static_cast<size_t>(v)] = gain;
  to_[static_cast<size_t>(v)] = to;
}

void GainBucketQueue::Invalidate(VertexId v) {
  ++gen_[static_cast<size_t>(v)];
  uint8_t& has = has_live_[static_cast<size_t>(v)];
  live_ -= has ? 1 : 0;
  has = 0;
}

bool GainBucketQueue::Pop(Entry* out) {
  while (top_ >= 0) {
    std::vector<Entry>& heap = buckets_[static_cast<size_t>(top_)];
    // Stale entries are dropped as they surface; each is dropped exactly once, so the
    // cost is O(log) amortized per Push/Invalidate.
    while (!heap.empty() &&
           heap.front().gen != gen_[static_cast<size_t>(heap.front().v)]) {
      std::pop_heap(heap.begin(), heap.end(), HeapLess);
      heap.pop_back();
    }
    if (heap.empty()) {
      --top_;
      continue;
    }
    // The heap top is the exact in-bucket maximum by (gain, earliest push), and bucket
    // order makes it the global maximum.
    *out = heap.front();
    std::pop_heap(heap.begin(), heap.end(), HeapLess);
    heap.pop_back();
    ++gen_[static_cast<size_t>(out->v)];  // The popped vertex no longer has a live entry.
    has_live_[static_cast<size_t>(out->v)] = 0;
    --live_;
    return true;
  }
  return false;
}

}  // namespace dcp
