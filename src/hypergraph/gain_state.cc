#include "hypergraph/gain_state.h"

#include <algorithm>

#include "common/check.h"

namespace dcp {

KWayGainState::KWayGainState(const Hypergraph& hg, int k, Partition& part)
    : hg_(hg), k_(k), stride_(simd::PaddedStride(k)), part_(part) {
  DCP_CHECK(hg.finalized());
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  const size_t n = static_cast<size_t>(hg.num_vertices());
  const size_t m = static_cast<size_t>(hg.num_edges());
  const size_t stride = static_cast<size_t>(stride_);
  phi_.assign(m * stride, 0);
  lambda_.assign(m, 0);
  cut_degree_.assign(n, 0);
  removal_.assign(n, 0.0);
  incident_weight_.assign(n, 0.0);
  // Row storage stays uninitialized; rows are zeroed on first touch (MaterializeRow),
  // so vertices that never see a cut edge cost nothing here.
  connect_ = std::make_unique_for_overwrite<double[]>(n * stride);
  adj_count_ = std::make_unique_for_overwrite<int32_t[]>(n * stride);
  in_adj_ = std::make_unique_for_overwrite<uint8_t[]>(n * stride);
  adj_parts_ = std::make_unique_for_overwrite<PartId[]>(n * stride);
  adj_len_.assign(n, 0);
  row_ready_.assign(n, 0);

  // Parts touched by the current edge, collected while building phi.
  std::vector<PartId> touched;
  touched.reserve(static_cast<size_t>(k_));
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    auto [pbegin, pend] = hg.EdgePins(e);
    touched.clear();
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      int32_t& count = PhiRef(e, part[static_cast<size_t>(*pp)]);
      if (count == 0) {
        touched.push_back(part[static_cast<size_t>(*pp)]);
      }
      ++count;
    }
    lambda_[static_cast<size_t>(e)] = static_cast<int32_t>(touched.size());
    const double w = hg.edge_weight(e);
    const bool cut = touched.size() > 1;
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      const size_t vi = static_cast<size_t>(*pp);
      incident_weight_[vi] += w;
      if (Phi(e, part[vi]) == 1) {
        removal_[vi] += w;
      }
      if (cut) {
        ++cut_degree_[vi];
        MaterializeRow(*pp);
        for (PartId p : touched) {
          connect_[vi * stride + static_cast<size_t>(p)] += w;
          AddAdjacency(*pp, p);
        }
      }
      // Internal edges contribute no connection weight: a pin's own part is not a move
      // target, and no other part touches the edge.
    }
  }
  for (double w : incident_weight_) {
    max_incident_weight_ = std::max(max_incident_weight_, w);
  }
}

void KWayGainState::Apply(VertexId v, PartId b) {
  const PartId a = part_[static_cast<size_t>(v)];
  DCP_CHECK_NE(a, b);
  const size_t stride = static_cast<size_t>(stride_);
  // R(v) is defined relative to v's part, so it is rebuilt for b during the edge sweep.
  double removal_v = 0.0;
  auto [ebegin, eend] = hg_.VertexEdges(v);
  for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
    const EdgeId e = *ep;
    const double w = hg_.edge_weight(e);
    auto [pbegin, pend] = hg_.EdgePins(e);

    // --- v leaves part a. ---
    int32_t& pa = PhiRef(e, a);
    --pa;
    DCP_DCHECK(pa >= 0);
    if (pa == 0) {
      int32_t& lambda = lambda_[static_cast<size_t>(e)];
      --lambda;
      if (lambda == 1) {
        // Edge became internal in the remaining part q: strip the connection weight of
        // BOTH its parts (a and q) so the rows keep reflecting cut edges only, and drop
        // its pins' cut counts. These are pure gain decreases — pop-time revalidation
        // territory, no events.
        PartId q = -1;
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          if (*pp != v) {
            q = part_[static_cast<size_t>(*pp)];
            break;
          }
        }
        DCP_DCHECK(q >= 0);
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          const size_t base = static_cast<size_t>(*pp) * stride;
          connect_[base + static_cast<size_t>(a)] -= w;
          --adj_count_[base + static_cast<size_t>(a)];
          connect_[base + static_cast<size_t>(q)] -= w;
          --adj_count_[base + static_cast<size_t>(q)];
          --cut_degree_[static_cast<size_t>(*pp)];
        }
      } else if (lambda >= 2) {
        // Still cut: only part a's contribution leaves.
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          const size_t base = static_cast<size_t>(*pp) * stride;
          connect_[base + static_cast<size_t>(a)] -= w;
          --adj_count_[base + static_cast<size_t>(a)];
        }
      }
      // lambda == 0: single-pin edge; it never contributed connection weight.
    } else if (pa == 1) {
      // Exactly one pin remains in a; it becomes removable for this edge.
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        if (*pp != v && part_[static_cast<size_t>(*pp)] == a) {
          removal_[static_cast<size_t>(*pp)] += w;
          removal_events_.emplace_back(*pp, w);
          break;
        }
      }
    }

    // --- v enters part b. ---
    int32_t& pb = PhiRef(e, b);
    if (pb == 0) {
      int32_t& lambda = lambda_[static_cast<size_t>(e)];
      ++lambda;
      if (lambda == 2) {
        // Edge became cut: materialize the connection weight of both its parts — the
        // pins' shared part q and the arriving part b — on every pin.
        PartId q = -1;
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          if (*pp != v) {
            q = part_[static_cast<size_t>(*pp)];
            break;
          }
        }
        DCP_DCHECK(q >= 0);
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          MaterializeRow(*pp);
          const size_t base = static_cast<size_t>(*pp) * stride;
          connect_[base + static_cast<size_t>(q)] += w;
          AddAdjacency(*pp, q);
          connect_[base + static_cast<size_t>(b)] += w;
          AddAdjacency(*pp, b);
          // Gains toward q are own-part (not moves) for every pin but v, whose terms
          // are rebuilt wholesale; only the gains toward b are real increases.
          if (*pp != v && part_[static_cast<size_t>(*pp)] != b) {
            connect_events_.push_back(ConnectEvent{*pp, b});
          }
          if (++cut_degree_[static_cast<size_t>(*pp)] == 1) {
            activated_.push_back(*pp);
          }
        }
      } else if (lambda >= 3) {
        // Already cut: part b newly touches it.
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          const size_t base = static_cast<size_t>(*pp) * stride;
          connect_[base + static_cast<size_t>(b)] += w;
          AddAdjacency(*pp, b);
          if (*pp != v && part_[static_cast<size_t>(*pp)] != b) {
            connect_events_.push_back(ConnectEvent{*pp, b});
          }
        }
      }
      // lambda == 1: single-pin edge; it stays internal and contributes nothing.
      removal_v += w;  // v is now the sole pin of e in b.
    } else if (pb == 1) {
      // The previously-sole pin of e in b stops being removable. (v is still in a here,
      // so it cannot match.)
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        if (part_[static_cast<size_t>(*pp)] == b) {
          removal_[static_cast<size_t>(*pp)] -= w;  // Decrease: caught at pop time.
          break;
        }
      }
    }
    ++pb;
  }
  removal_[static_cast<size_t>(v)] = removal_v;
  part_[static_cast<size_t>(v)] = b;
}

}  // namespace dcp
