#include "hypergraph/gain_state.h"

#include "common/check.h"

namespace dcp {

KWayGainState::KWayGainState(const Hypergraph& hg, int k, Partition& part)
    : hg_(hg), k_(k), part_(part) {
  DCP_CHECK(hg.finalized());
  DCP_CHECK_EQ(static_cast<int>(part.size()), hg.num_vertices());
  const size_t n = static_cast<size_t>(hg.num_vertices());
  const size_t m = static_cast<size_t>(hg.num_edges());
  phi_.assign(m * static_cast<size_t>(k_), 0);
  lambda_.assign(m, 0);
  cut_degree_.assign(n, 0);
  removal_.assign(n, 0.0);
  connect_.assign(n * static_cast<size_t>(k_), 0.0);
  incident_weight_.assign(n, 0.0);

  // Parts touched by the current edge, collected while building phi.
  std::vector<PartId> touched;
  touched.reserve(static_cast<size_t>(k_));
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    auto [pbegin, pend] = hg.EdgePins(e);
    touched.clear();
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      int32_t& count = PhiRef(e, part[static_cast<size_t>(*pp)]);
      if (count == 0) {
        touched.push_back(part[static_cast<size_t>(*pp)]);
      }
      ++count;
    }
    lambda_[static_cast<size_t>(e)] = static_cast<int32_t>(touched.size());
    const double w = hg.edge_weight(e);
    const bool cut = touched.size() > 1;
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      const size_t vi = static_cast<size_t>(*pp);
      incident_weight_[vi] += w;
      if (Phi(e, part[vi]) == 1) {
        removal_[vi] += w;
      }
      if (cut) {
        ++cut_degree_[vi];
      }
      for (PartId p : touched) {
        connect_[vi * static_cast<size_t>(k_) + static_cast<size_t>(p)] += w;
      }
    }
  }
}

void KWayGainState::Apply(VertexId v, PartId b) {
  const PartId a = part_[static_cast<size_t>(v)];
  DCP_CHECK_NE(a, b);
  // R(v) is defined relative to v's part, so it is rebuilt for b during the edge sweep.
  double removal_v = 0.0;
  auto [ebegin, eend] = hg_.VertexEdges(v);
  for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
    const EdgeId e = *ep;
    const double w = hg_.edge_weight(e);
    auto [pbegin, pend] = hg_.EdgePins(e);

    // --- v leaves part a. ---
    int32_t& pa = PhiRef(e, a);
    --pa;
    DCP_DCHECK(pa >= 0);
    if (pa == 0) {
      // Part a no longer touches e: every pin loses its connection weight to a.
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        connect_[static_cast<size_t>(*pp) * static_cast<size_t>(k_) +
                 static_cast<size_t>(a)] -= w;
      }
      if (--lambda_[static_cast<size_t>(e)] == 1) {
        // Edge became internal: its pins may drop out of the boundary.
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          --cut_degree_[static_cast<size_t>(*pp)];
        }
      }
    } else if (pa == 1) {
      // Exactly one pin remains in a; it becomes removable for this edge.
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        if (*pp != v && part_[static_cast<size_t>(*pp)] == a) {
          removal_[static_cast<size_t>(*pp)] += w;
          break;
        }
      }
    }

    // --- v enters part b. ---
    int32_t& pb = PhiRef(e, b);
    if (pb == 0) {
      // Part b newly touches e: every pin gains connection weight to b.
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        connect_[static_cast<size_t>(*pp) * static_cast<size_t>(k_) +
                 static_cast<size_t>(b)] += w;
      }
      if (++lambda_[static_cast<size_t>(e)] == 2) {
        for (const VertexId* pp = pbegin; pp != pend; ++pp) {
          if (++cut_degree_[static_cast<size_t>(*pp)] == 1) {
            activated_.push_back(*pp);
          }
        }
      }
      removal_v += w;  // v is now the sole pin of e in b.
    } else if (pb == 1) {
      // The previously-sole pin of e in b stops being removable. (v is still in a here,
      // so it cannot match.)
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        if (part_[static_cast<size_t>(*pp)] == b) {
          removal_[static_cast<size_t>(*pp)] -= w;
          break;
        }
      }
    }
    ++pb;
  }
  removal_[static_cast<size_t>(v)] = removal_v;
  part_[static_cast<size_t>(v)] = b;
}

}  // namespace dcp
