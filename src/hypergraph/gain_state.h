// Incremental k-way FM gain maintenance on the connectivity-minus-one objective.
//
// The gain of moving vertex v from its part a to part b decomposes as
//   gain(v, b) = R(v) + C(v, b) - W(v)
// where
//   R(v)    = sum over incident edges e of w_e * [phi(e, a) == 1]   (v sole pin in a),
//   C(v, b) = sum over incident edges e of w_e * [phi(e, b)  > 0]   (b already touches e),
//   W(v)    = total incident edge weight of v (constant),
// and phi(e, p) is the number of pins of e in part p. All three terms are maintained
// under Apply() in O(degree) plus O(|e|) work only on the pin-count transitions that
// actually change them (phi hitting 0/1 on either side of the move), replacing the
// per-candidate-part edge rescans the refinement hot path used to do.
//
// Large-k support (k up to 256 and beyond):
//  - Per-part rows (phi, connect, adjacency) are stored with a stride padded to
//    simd::kRowPad so full-row scans run in whole SIMD vectors (see simd.h).
//  - Internal edges (lambda == 1) contribute nothing to the connection rows: for a pin u
//    of an edge internal in part p, C(u, p) is u's own part — never a move target — and
//    non-pins have phi(e, .) = 0 everywhere else. Contributions are added when an edge
//    first becomes cut and removed when it goes internal again, so the rows depend only
//    on cut edges. Queried gains are unaffected (own-part gains are not moves).
//  - Because of that, a vertex needs its rows materialized only once it touches a cut
//    edge. Rows live in uninitialized storage and are zeroed lazily on first touch:
//    construction is O(cut structure), not O(V * k), which is what makes rebuilding the
//    state per refinement call affordable at k = 256.
//  - Each materialized vertex keeps an explicit list of its adjacent parts (parts with
//    at least one incident cut edge pinned there, maintained exactly via integer edge
//    counts). Moves with positive gain always target an adjacent part (a non-adjacent
//    target has C(v, b) = 0, so its gain R - W <= 0), which turns the refinement inner
//    loop from O(k) per vertex into O(|adjacent parts|) = O(degree).
//  - Apply() records every gain-term INCREASE as an (affected vertex, part) event, so a
//    priority-queue-driven refinement can bump exactly the affected keys in O(1) per
//    event; decreases are left to pop-time revalidation.
//
// The state also maintains, per edge, the number of distinct parts touched (lambda) and,
// per vertex, the number of incident cut edges, so boundary membership is an O(1) query.
#ifndef DCP_HYPERGRAPH_GAIN_STATE_H_
#define DCP_HYPERGRAPH_GAIN_STATE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "hypergraph/simd.h"

namespace dcp {

class KWayGainState {
 public:
  // Builds phi, gains, and boundary counts for `part`. The partition vector is shared
  // with the caller and updated by Apply(). hg must be finalized and outlive this state.
  KWayGainState(const Hypergraph& hg, int k, Partition& part);

  int k() const { return k_; }
  // Parts per padded row (a multiple of simd::kRowPad).
  int stride() const { return stride_; }
  const Partition& part() const { return part_; }

  int32_t Phi(EdgeId e, PartId p) const {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(stride_) +
                static_cast<size_t>(p)];
  }
  // Number of distinct parts touched by edge e.
  int32_t Lambda(EdgeId e) const { return lambda_[static_cast<size_t>(e)]; }
  // True iff some incident edge of v has pins in more than one part.
  bool IsBoundary(VertexId v) const { return cut_degree_[static_cast<size_t>(v)] > 0; }

  // Exact connectivity gain of moving v to part b (b != part()[v]), O(1).
  double Gain(VertexId v, PartId b) const {
    const size_t vi = static_cast<size_t>(v);
    MaterializeRow(v);
    return removal_[vi] +
           connect_[vi * static_cast<size_t>(stride_) + static_cast<size_t>(b)] -
           incident_weight_[vi];
  }

  // Gain of moving v to any part it is NOT adjacent to (C = 0); always <= 0.
  double GainBase(VertexId v) const {
    return removal_[static_cast<size_t>(v)] - incident_weight_[static_cast<size_t>(v)];
  }

  // Padded C(v, .) row for vectorized full scans (padding entries are 0).
  const double* ConnectRow(VertexId v) const {
    MaterializeRow(v);
    return connect_.get() + static_cast<size_t>(v) * static_cast<size_t>(stride_);
  }

  // Upper bound on |gain| over all vertices (max total incident edge weight); the bucket
  // queue uses it to size its gain range.
  double MaxAbsGain() const { return max_incident_weight_; }

  // Calls fn(p) for every part p the vertex has an incident cut edge pinned in
  // (C(v, p) > 0 implies p is listed; v's own part may be listed too). Compacts
  // lazily-deleted entries in passing, so amortized O(live entries). Order is the
  // deterministic insertion order of adjacency events.
  template <typename Fn>
  void ForEachAdjacentPart(VertexId v, Fn&& fn) {
    MaterializeRow(v);
    const size_t base = static_cast<size_t>(v) * static_cast<size_t>(stride_);
    PartId* parts = adj_parts_.get() + base;
    int32_t& len = adj_len_[static_cast<size_t>(v)];
    int32_t w = 0;
    for (int32_t r = 0; r < len; ++r) {
      const PartId p = parts[r];
      if (adj_count_[base + static_cast<size_t>(p)] > 0) {
        parts[w++] = p;
        fn(p);
      } else {
        in_adj_[base + static_cast<size_t>(p)] = 0;
      }
    }
    len = w;
  }

  // Moves v to part b, updating the partition, phi, lambda, boundary counts, adjacency
  // lists, and every affected vertex's gain terms.
  void Apply(VertexId v, PartId b);

  // Vertices whose boundary status flipped from internal to boundary during Apply()
  // calls since the last drain. May contain vertices that have since gone internal
  // again; re-check IsBoundary() when consuming.
  std::vector<VertexId>& activated() { return activated_; }

  // Gain-INCREASE events since the last ClearEvents(), in Apply() order. A queue-driven
  // refinement uses them to bump exactly the affected keys in O(1) per event, so no
  // queue entry is ever under-keyed; pure decreases leave entries over-keyed, which the
  // refinement corrects when the entry pops (revalidation) — exact-argmax pops survive
  // either way.
  //  - connect_events: C(v, to) increased (gain toward `to` grew to Gain(v, to)).
  //  - removal_events: R(v) increased by `second` (gains toward EVERY part grew by it).
  // The moved vertex itself is excluded; its terms are rebuilt wholesale.
  struct ConnectEvent {
    VertexId v;
    PartId to;
  };
  const std::vector<ConnectEvent>& connect_events() const { return connect_events_; }
  const std::vector<std::pair<VertexId, double>>& removal_events() const {
    return removal_events_;
  }
  void ClearEvents() {
    connect_events_.clear();
    removal_events_.clear();
  }

 private:
  int32_t& PhiRef(EdgeId e, PartId p) {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(stride_) +
                static_cast<size_t>(p)];
  }

  // Zeroes v's connect/adjacency rows on first touch. Rows start uninitialized; only
  // vertices that ever touch a cut edge (or are explicitly queried) pay for them.
  // Logically const: materialization is invisible to callers.
  void MaterializeRow(VertexId v) const {
    if (row_ready_[static_cast<size_t>(v)]) {
      return;
    }
    row_ready_[static_cast<size_t>(v)] = 1;
    const size_t stride = static_cast<size_t>(stride_);
    const size_t base = static_cast<size_t>(v) * stride;
    std::memset(connect_.get() + base, 0, stride * sizeof(double));
    std::memset(adj_count_.get() + base, 0, stride * sizeof(int32_t));
    std::memset(in_adj_.get() + base, 0, stride * sizeof(uint8_t));
    adj_len_[static_cast<size_t>(v)] = 0;
  }

  void AddAdjacency(VertexId v, PartId p) {
    const size_t base = static_cast<size_t>(v) * static_cast<size_t>(stride_);
    const size_t idx = base + static_cast<size_t>(p);
    if (++adj_count_[idx] == 1 && in_adj_[idx] == 0) {
      in_adj_[idx] = 1;
      adj_parts_[base + static_cast<size_t>(adj_len_[static_cast<size_t>(v)]++)] = p;
    }
  }

  const Hypergraph& hg_;
  const int k_;
  const int stride_;
  Partition& part_;
  std::vector<int32_t> phi_;             // E x stride pin counts.
  std::vector<int32_t> lambda_;          // Per edge: distinct parts touched.
  std::vector<int32_t> cut_degree_;      // Per vertex: incident cut edges.
  std::vector<double> removal_;          // R(v).
  std::vector<double> incident_weight_;  // W(v).
  double max_incident_weight_ = 0.0;
  // Lazily-materialized per-vertex rows (see MaterializeRow). Uninitialized storage:
  // untouched rows never fault a page, let alone get zeroed.
  std::unique_ptr<double[]> connect_;     // V x stride: C(v, b) over cut edges.
  std::unique_ptr<int32_t[]> adj_count_;  // V x stride: incident cut edges pinned in p.
  std::unique_ptr<uint8_t[]> in_adj_;     // V x stride: p present in adj_parts_ row.
  std::unique_ptr<PartId[]> adj_parts_;   // V x stride flat adjacency arena.
  mutable std::vector<int32_t> adj_len_;
  mutable std::vector<uint8_t> row_ready_;
  std::vector<VertexId> activated_;      // Internal -> boundary transitions.
  std::vector<ConnectEvent> connect_events_;
  std::vector<std::pair<VertexId, double>> removal_events_;
};

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_GAIN_STATE_H_
