// Incremental k-way FM gain maintenance on the connectivity-minus-one objective.
//
// The gain of moving vertex v from its part a to part b decomposes as
//   gain(v, b) = R(v) + C(v, b) - W(v)
// where
//   R(v)    = sum over incident edges e of w_e * [phi(e, a) == 1]   (v sole pin in a),
//   C(v, b) = sum over incident edges e of w_e * [phi(e, b)  > 0]   (b already touches e),
//   W(v)    = total incident edge weight of v (constant),
// and phi(e, p) is the number of pins of e in part p. All three terms are maintained
// under Apply() in O(degree) plus O(|e|) work only on the pin-count transitions that
// actually change them (phi hitting 0/1 on either side of the move), replacing the
// per-candidate-part edge rescans the refinement hot path used to do.
//
// The state also maintains, per edge, the number of distinct parts touched (lambda) and,
// per vertex, the number of incident cut edges, so boundary membership is an O(1) query
// and refinement can keep an explicit boundary worklist instead of rescanning all
// vertices' neighborhoods.
#ifndef DCP_HYPERGRAPH_GAIN_STATE_H_
#define DCP_HYPERGRAPH_GAIN_STATE_H_

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace dcp {

class KWayGainState {
 public:
  // Builds phi, gains, and boundary counts for `part`. The partition vector is shared
  // with the caller and updated by Apply(). hg must be finalized and outlive this state.
  KWayGainState(const Hypergraph& hg, int k, Partition& part);

  int k() const { return k_; }
  const Partition& part() const { return part_; }

  int32_t Phi(EdgeId e, PartId p) const {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(k_) + static_cast<size_t>(p)];
  }
  // Number of distinct parts touched by edge e.
  int32_t Lambda(EdgeId e) const { return lambda_[static_cast<size_t>(e)]; }
  // True iff some incident edge of v has pins in more than one part.
  bool IsBoundary(VertexId v) const { return cut_degree_[static_cast<size_t>(v)] > 0; }

  // Exact connectivity gain of moving v to part b (b != part()[v]), O(1).
  double Gain(VertexId v, PartId b) const {
    const size_t vi = static_cast<size_t>(v);
    return removal_[vi] +
           connect_[vi * static_cast<size_t>(k_) + static_cast<size_t>(b)] -
           incident_weight_[vi];
  }

  // Moves v to part b, updating the partition, phi, lambda, boundary counts, and every
  // affected vertex's gain terms.
  void Apply(VertexId v, PartId b);

  // Vertices whose boundary status flipped from internal to boundary during Apply()
  // calls since the last drain. Refinement appends these to its worklist so a pass
  // chases the boundary as it moves instead of waiting for the next pass. May contain
  // vertices that have since gone internal again; re-check IsBoundary() when consuming.
  std::vector<VertexId>& activated() { return activated_; }

 private:
  int32_t& PhiRef(EdgeId e, PartId p) {
    return phi_[static_cast<size_t>(e) * static_cast<size_t>(k_) + static_cast<size_t>(p)];
  }

  const Hypergraph& hg_;
  const int k_;
  Partition& part_;
  std::vector<int32_t> phi_;             // E x k pin counts.
  std::vector<int32_t> lambda_;          // Per edge: distinct parts touched.
  std::vector<int32_t> cut_degree_;      // Per vertex: incident cut edges.
  std::vector<double> removal_;          // R(v).
  std::vector<double> connect_;          // V x k: C(v, b).
  std::vector<double> incident_weight_;  // W(v).
  std::vector<VertexId> activated_;      // Internal -> boundary transitions.
};

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_GAIN_STATE_H_
