// Balanced k-way hypergraph partitioning interface. Two implementations:
//  - GreedyPartitioner: fast first-fit-decreasing with affinity (baseline / fallback).
//  - MultilevelPartitioner: coarsening + initial-partition portfolio + K-way FM refinement,
//    the stand-in for KaHyPar used by the paper (§4.2).
#ifndef DCP_HYPERGRAPH_PARTITIONER_H_
#define DCP_HYPERGRAPH_PARTITIONER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "hypergraph/hypergraph.h"

namespace dcp {

// Parts at or above this count run the large-k regime everywhere it exists: the
// multilevel portfolio narrows (see MultilevelPartitioner::Run), refinement switches
// from full O(k) candidate scans to adjacency-limited ones, and component packing skips
// its flat-FM polish on connected graphs. One constant so the regimes can never drift
// apart.
inline constexpr int kLargeKThreshold = 32;

struct PartitionConfig {
  int k = 2;
  // Balance tolerance per weight dimension: [compute, data]. The paper uses epsilon for
  // compute (0.4 inter-node, 0.1 intra-node) and keeps data "as balanced as possible";
  // we default data tolerance to 0.1.
  std::array<double, 2> eps = {0.1, 0.1};
  uint64_t seed = 1;

  // Multilevel knobs.
  int coarsen_until_per_part = 24;  // Stop coarsening near k * this many vertices.
  double max_cluster_weight_frac = 0.5;  // Cluster cap as fraction of total/k, per dim.
  int initial_tries = 6;
  int refinement_passes = 6;
  // Vertices per parallel coarsening-score task. Chunk boundaries depend only on this and
  // the vertex count — never the pool size — so coarsening stays bit-deterministic across
  // thread counts. Values below 64 are clamped up to keep task overhead bounded.
  int coarsening_grain = 1024;
  // Independent multilevel V-cycles in the portfolio. Coarsening randomness gives each
  // cycle a genuinely different solution-space cut; they run concurrently on the global
  // thread pool, so extra cycles cost little wall clock on multi-core hosts.
  int vcycles = 2;
  // Iterated V-cycles applied to the portfolio winner (KaHyPar-style): re-coarsen
  // respecting the incumbent partition, then re-refine from the projected solution at
  // every level. Monotone — each round keeps the incumbent unless it strictly improves —
  // so it converts portfolio luck into convergence. Stops early when a round stalls.
  int vcycle_iterations = 3;
};

// Wall-clock decomposition of a partitioner run into the paper's multilevel
// stages. Portfolio candidates run concurrently, so the stage sums are CPU
// spans and can exceed the run's wall clock; the greedy partitioner leaves
// them zero. Feeds the plan_coarsen/plan_initial/plan_refine trace phases.
struct PartitionStageSeconds {
  double coarsen = 0.0;
  double initial = 0.0;
  double refine = 0.0;

  void Accumulate(const PartitionStageSeconds& other) {
    coarsen += other.coarsen;
    initial += other.initial;
    refine += other.refine;
  }
  double Total() const { return coarsen + initial + refine; }
};

struct PartitionResult {
  Partition part;
  double connectivity_cost = 0.0;  // Connectivity-minus-one objective.
  bool balanced = false;
  PartitionStageSeconds stages;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual PartitionResult Run(const Hypergraph& hg, const PartitionConfig& config) const = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<Partitioner> MakeGreedyPartitioner();
std::unique_ptr<Partitioner> MakeMultilevelPartitioner();

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_PARTITIONER_H_
