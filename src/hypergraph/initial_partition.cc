// Initial partitioning portfolio for the coarsest hypergraph: several randomized runs of
// greedy affinity placement plus random balanced assignments, each polished with one FM
// pass; the best feasible candidate wins.
#include <algorithm>
#include <limits>

#include "common/check.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

Partition RandomBalanced(const Hypergraph& hg, const PartitionConfig& config, Rng& rng) {
  // Random order, round-robin over parts weighted by remaining capacity in the dominant
  // dimension. Crude but diverse, which is its purpose in the portfolio.
  const int k = config.k;
  const VertexWeight total = hg.TotalWeight();
  const std::array<double, 2> target = {total[0] / k, total[1] / k};
  std::vector<VertexId> order(static_cast<size_t>(hg.num_vertices()));
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    order[static_cast<size_t>(v)] = v;
  }
  rng.Shuffle(order);
  Partition part(static_cast<size_t>(hg.num_vertices()), 0);
  std::vector<VertexWeight> loads(static_cast<size_t>(k), VertexWeight{0.0, 0.0});
  for (VertexId v : order) {
    int best = 0;
    double least = std::numeric_limits<double>::max();
    for (int p = 0; p < k; ++p) {
      const auto& load = loads[static_cast<size_t>(p)];
      const double norm =
          std::max(target[0] > 0 ? load[0] / target[0] : 0.0,
                   target[1] > 0 ? load[1] / target[1] : 0.0);
      if (norm < least) {
        least = norm;
        best = p;
      }
    }
    part[static_cast<size_t>(v)] = best;
    loads[static_cast<size_t>(best)][0] += hg.vertex_weight(v)[0];
    loads[static_cast<size_t>(best)][1] += hg.vertex_weight(v)[1];
  }
  return part;
}

}  // namespace

Partition ComponentPackingPartition(const Hypergraph& hg, const PartitionConfig& config,
                                    Rng& rng) {
  const int n = hg.num_vertices();
  // Connected components via union-find over edge pins.
  std::vector<VertexId> parent(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    parent[static_cast<size_t>(v)] = v;
  }
  auto find = [&parent](VertexId v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    auto [pb, pe] = hg.EdgePins(e);
    if (pb == pe) {
      continue;
    }
    const VertexId root = find(*pb);
    for (const VertexId* p = pb + 1; p != pe; ++p) {
      parent[static_cast<size_t>(find(*p))] = root;
    }
  }
  // Component weights.
  std::vector<VertexId> comp_of(static_cast<size_t>(n));
  std::vector<VertexWeight> comp_weight;
  std::vector<VertexId> comp_id(static_cast<size_t>(n), -1);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = find(v);
    if (comp_id[static_cast<size_t>(root)] < 0) {
      comp_id[static_cast<size_t>(root)] = static_cast<VertexId>(comp_weight.size());
      comp_weight.push_back({0.0, 0.0});
    }
    comp_of[static_cast<size_t>(v)] = comp_id[static_cast<size_t>(root)];
    comp_weight[static_cast<size_t>(comp_of[static_cast<size_t>(v)])][0] +=
        hg.vertex_weight(v)[0];
    comp_weight[static_cast<size_t>(comp_of[static_cast<size_t>(v)])][1] +=
        hg.vertex_weight(v)[1];
  }
  // A connected batch gives packing nothing to pack: the FFD below piles everything on
  // one part and the rebalance/refine polish amounts to a second from-scratch flat FM —
  // the most expensive way to produce a candidate that never wins. At large k (where
  // that flat FM is priciest) hand back a plain greedy partition instead; with many
  // components (the decomposed-batch case this candidate exists for) run the real thing.
  if (comp_weight.size() == 1 && config.k >= kLargeKThreshold) {
    return GreedyAffinityPartition(hg, config, rng);
  }
  // FFD over components by max normalized weight, into the least-loaded part.
  const int k = config.k;
  const VertexWeight total = hg.TotalWeight();
  const std::array<double, 2> target = {total[0] / k, total[1] / k};
  std::vector<int> order(comp_weight.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  auto norm = [&](const VertexWeight& w) {
    return std::max(target[0] > 0 ? w[0] / target[0] : 0.0,
                    target[1] > 0 ? w[1] / target[1] : 0.0);
  };
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return norm(comp_weight[static_cast<size_t>(a)]) >
           norm(comp_weight[static_cast<size_t>(b)]);
  });
  std::vector<PartId> comp_part(comp_weight.size(), 0);
  std::vector<VertexWeight> loads(static_cast<size_t>(k), VertexWeight{0.0, 0.0});
  for (int c : order) {
    int best = 0;
    double least = std::numeric_limits<double>::max();
    for (int p = 0; p < k; ++p) {
      const double load = norm(loads[static_cast<size_t>(p)]);
      if (load < least) {
        least = load;
        best = p;
      }
    }
    comp_part[static_cast<size_t>(c)] = best;
    loads[static_cast<size_t>(best)][0] += comp_weight[static_cast<size_t>(c)][0];
    loads[static_cast<size_t>(best)][1] += comp_weight[static_cast<size_t>(c)][1];
  }
  Partition part(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    part[static_cast<size_t>(v)] = comp_part[static_cast<size_t>(comp_of[static_cast<size_t>(v)])];
  }
  // Rebalance (splits oversized components if needed) + refine.
  FmRefine(hg, config, part, rng);
  return part;
}

Partition ComputeInitialPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng) {
  DCP_CHECK_GE(config.initial_tries, 1);
  Partition best;
  double best_cost = std::numeric_limits<double>::max();
  bool best_balanced = false;
  for (int attempt = 0; attempt < config.initial_tries; ++attempt) {
    Rng attempt_rng = rng.Fork();
    Partition candidate = (attempt % 2 == 0)
                              ? GreedyAffinityPartition(hg, config, attempt_rng)
                              : RandomBalanced(hg, config, attempt_rng);
    FmRefine(hg, config, candidate, attempt_rng);
    const double cost = ConnectivityMinusOne(hg, candidate, config.k);
    const bool balanced = IsBalanced(hg, candidate, config.k, config.eps);
    // Feasibility first, then objective.
    const bool better = best.empty() || (balanced && !best_balanced) ||
                        (balanced == best_balanced && cost < best_cost);
    if (better) {
      best = std::move(candidate);
      best_cost = cost;
      best_balanced = balanced;
    }
  }
  return best;
}

}  // namespace dcp
