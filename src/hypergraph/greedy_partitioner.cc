// First-fit-decreasing partitioner with edge affinity. Serves as (a) the comparison baseline
// for multilevel quality, (b) the guaranteed-feasible fallback, and (c) the initial-partition
// building block reused by the multilevel code.
#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "hypergraph/metrics.h"
#include "hypergraph/partitioner.h"

namespace dcp {

Partition GreedyAffinityPartition(const Hypergraph& hg, const PartitionConfig& config,
                                  Rng& rng) {
  const int k = config.k;
  const VertexWeight total = hg.TotalWeight();
  const std::array<double, 2> target = {total[0] / k, total[1] / k};

  // Process heaviest-first (by max normalized weight) for bin-packing quality;
  // random tie-break for diversity across seeds.
  std::vector<VertexId> order(static_cast<size_t>(hg.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> key(order.size());
  for (VertexId v = 0; v < hg.num_vertices(); ++v) {
    const VertexWeight& w = hg.vertex_weight(v);
    const double w0 = target[0] > 0 ? w[0] / target[0] : 0.0;
    const double w1 = target[1] > 0 ? w[1] / target[1] : 0.0;
    key[static_cast<size_t>(v)] =
        std::max(w0, w1) + 1e-12 * static_cast<double>(rng.NextBounded(1024));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     return key[static_cast<size_t>(a)] > key[static_cast<size_t>(b)];
                   });

  Partition part(static_cast<size_t>(hg.num_vertices()), -1);
  std::vector<VertexWeight> loads(static_cast<size_t>(k), VertexWeight{0.0, 0.0});
  // Affinity of a part to a vertex: total weight of incident edges that already have a pin
  // in that part (i.e. communication avoided by co-locating).
  std::vector<double> affinity(static_cast<size_t>(k));

  for (VertexId v : order) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    auto [ebegin, eend] = hg.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      auto [pbegin, pend] = hg.EdgePins(*ep);
      uint64_t seen = 0;  // k <= 64 in all DCP uses; fall back to per-pin loop otherwise.
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        const PartId p = part[static_cast<size_t>(*pp)];
        if (p >= 0 && (k > 64 || (seen & (uint64_t{1} << p)) == 0)) {
          affinity[static_cast<size_t>(p)] += hg.edge_weight(*ep);
          if (k <= 64) {
            seen |= uint64_t{1} << p;
          }
        }
      }
    }
    const VertexWeight& w = hg.vertex_weight(v);
    // Pick the feasible part with the best (affinity, -load) lexicographic score.
    int best = -1;
    double best_score = 0.0;
    for (int p = 0; p < k; ++p) {
      const auto& load = loads[static_cast<size_t>(p)];
      const bool fits =
          (target[0] <= 0 || load[0] + w[0] <= (1 + config.eps[0]) * target[0]) &&
          (target[1] <= 0 || load[1] + w[1] <= (1 + config.eps[1]) * target[1]);
      if (!fits) {
        continue;
      }
      const double norm_load =
          std::max(target[0] > 0 ? load[0] / target[0] : 0.0,
                   target[1] > 0 ? load[1] / target[1] : 0.0);
      const double score = affinity[static_cast<size_t>(p)] - 1e-3 * norm_load *
                                                                  hg.TotalEdgeWeight() / k;
      if (best < 0 || score > best_score) {
        best = p;
        best_score = score;
      }
    }
    if (best < 0) {
      // Nothing fits within tolerance (can happen with very coarse vertices): place on the
      // least-loaded part to keep imbalance minimal.
      double least = 0.0;
      for (int p = 0; p < k; ++p) {
        const auto& load = loads[static_cast<size_t>(p)];
        const double norm_load =
            std::max(target[0] > 0 ? load[0] / target[0] : 0.0,
                     target[1] > 0 ? load[1] / target[1] : 0.0);
        if (best < 0 || norm_load < least) {
          best = p;
          least = norm_load;
        }
      }
    }
    part[static_cast<size_t>(v)] = best;
    loads[static_cast<size_t>(best)][0] += w[0];
    loads[static_cast<size_t>(best)][1] += w[1];
  }
  return part;
}

namespace {

class GreedyPartitioner final : public Partitioner {
 public:
  PartitionResult Run(const Hypergraph& hg, const PartitionConfig& config) const override {
    DCP_CHECK(hg.finalized());
    DCP_CHECK_GE(config.k, 1);
    Rng rng(config.seed);
    PartitionResult result;
    result.part = GreedyAffinityPartition(hg, config, rng);
    result.connectivity_cost = ConnectivityMinusOne(hg, result.part, config.k);
    result.balanced = IsBalanced(hg, result.part, config.k, config.eps);
    return result;
  }
  std::string name() const override { return "greedy"; }
};

}  // namespace

std::unique_ptr<Partitioner> MakeGreedyPartitioner() {
  return std::make_unique<GreedyPartitioner>();
}

}  // namespace dcp
