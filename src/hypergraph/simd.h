// Vectorized per-part row scans for the k-way refinement hot path.
//
// Rows indexed by part (pin counts, connection weights, part loads) are stored with a
// stride padded to kRowPad so a full-row scan runs in whole SIMD vectors with no scalar
// tail; load-row padding is +inf, which fails every feasibility compare and so masks the
// padded lanes out without branches. An AVX2 intrinsics path is enabled when the target
// supports it (gate it off with -DDCP_DISABLE_SIMD); the fallback is written as
// branch-free contiguous loops that autovectorize. Both paths implement the identical
// selection rule — maximum gain, ties to the lowest part id — so build flags never change
// partitioner results.
#ifndef DCP_HYPERGRAPH_SIMD_H_
#define DCP_HYPERGRAPH_SIMD_H_

#include <limits>

#if defined(__AVX2__) && !defined(DCP_DISABLE_SIMD)
#define DCP_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace dcp {
namespace simd {

// Parts per padded row group. 8 doubles = two AVX2 vectors = one 64-byte cache line.
inline constexpr int kRowPad = 8;

inline int PaddedStride(int k) { return (k + kRowPad - 1) / kRowPad * kRowPad; }

// Masked argmax over one padded gain row:
//   gain[b] = base + connect_row[b],  feasible iff load0[b] + w0 <= limit0 &&
//                                                 load1[b] + w1 <= limit1.
// Returns the feasible part with the maximum gain (ties: lowest part id), or -1 if no
// part is feasible. `padded_k` must be a multiple of kRowPad and the load rows' padding
// must be +inf (so padded lanes are never feasible). Callers exclude the source part by
// temporarily setting its load to +inf. `scratch` holds padded_k doubles.
inline int BestFeasibleMove(const double* connect_row, double base, const double* load0,
                            const double* load1, double w0, double w1, double limit0,
                            double limit1, int padded_k, double* scratch,
                            double* best_gain_out) {
  const double kNegInf = -std::numeric_limits<double>::infinity();
#if DCP_SIMD_AVX2
  __m256d vbase = _mm256_set1_pd(base);
  __m256d vw0 = _mm256_set1_pd(w0);
  __m256d vw1 = _mm256_set1_pd(w1);
  __m256d vlimit0 = _mm256_set1_pd(limit0);
  __m256d vlimit1 = _mm256_set1_pd(limit1);
  __m256d vneg = _mm256_set1_pd(kNegInf);
  __m256d vmax = vneg;
  for (int b = 0; b < padded_k; b += 4) {
    __m256d gain = _mm256_add_pd(vbase, _mm256_loadu_pd(connect_row + b));
    __m256d fit0 = _mm256_cmp_pd(_mm256_add_pd(_mm256_loadu_pd(load0 + b), vw0), vlimit0,
                                 _CMP_LE_OQ);
    __m256d fit1 = _mm256_cmp_pd(_mm256_add_pd(_mm256_loadu_pd(load1 + b), vw1), vlimit1,
                                 _CMP_LE_OQ);
    __m256d masked = _mm256_blendv_pd(vneg, gain, _mm256_and_pd(fit0, fit1));
    _mm256_storeu_pd(scratch + b, masked);
    vmax = _mm256_max_pd(vmax, masked);
  }
  alignas(32) double lanes[4];
  _mm256_storeu_pd(lanes, vmax);
  double best = lanes[0];
  for (int i = 1; i < 4; ++i) {
    best = lanes[i] > best ? lanes[i] : best;
  }
#else
  // Branch-free masked-gain pass; contiguous loads/stores autovectorize.
  double best = kNegInf;
  for (int b = 0; b < padded_k; ++b) {
    const bool fits = load0[b] + w0 <= limit0 && load1[b] + w1 <= limit1;
    const double masked = fits ? base + connect_row[b] : kNegInf;
    scratch[b] = masked;
    best = masked > best ? masked : best;
  }
#endif
  if (best == kNegInf) {
    return -1;
  }
  *best_gain_out = best;
  for (int b = 0; b < padded_k; ++b) {
    if (scratch[b] == best) {
      return b;
    }
  }
  return -1;  // Unreachable: `best` was read from `scratch`.
}

// Index of the minimum value in a padded row (ties: lowest index). Padding must be +inf.
inline int RowArgMin(const double* row, int padded_k) {
  double best = row[0];
  for (int b = 1; b < padded_k; ++b) {
    best = row[b] < best ? row[b] : best;
  }
  for (int b = 0; b < padded_k; ++b) {
    if (row[b] == best) {
      return b;
    }
  }
  return 0;
}

}  // namespace simd
}  // namespace dcp

#endif  // DCP_HYPERGRAPH_SIMD_H_
