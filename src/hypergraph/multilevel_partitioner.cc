// Multilevel k-way hypergraph partitioner: coarsen with heavy-connectivity clustering,
// partition the coarsest graph with a randomized portfolio, then uncoarsen with FM
// refinement at every level. This is the stand-in for KaHyPar used by the paper (§4.2).
//
// The portfolio candidates (config.vcycles multilevel V-cycles with independent random
// streams, a refined direct greedy solution, and component packing) are independent, so
// they run concurrently on the global thread pool. Each candidate gets an RNG stream
// forked from the seed in a fixed order before any task starts and writes into its own
// result slot; the winner is then chosen by a fixed sequential scan and polished with
// iterated (incumbent-restricted) V-cycles. The output is therefore bit-identical to a
// sequential evaluation regardless of thread count or scheduling.
#include <algorithm>
#include <array>
#include <functional>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

// A chain of coarse levels, optionally tracking an incumbent partition projected onto
// every level (iterated V-cycles).
struct CoarsenChain {
  std::vector<CoarseLevel> levels;
  std::vector<Partition> level_parts;  // Filled iff an incumbent was supplied.
};

// Coarsens until the target size or diminishing returns. When `incumbent` is non-null,
// merges are restricted to same-part vertex pairs and the incumbent is projected onto
// each coarse level. One CoarseningScratch is reused across the whole chain.
CoarsenChain BuildCoarsenChain(const Hypergraph& hg, const PartitionConfig& config,
                               Rng& rng, const Partition* incumbent) {
  // Very large k can push k * coarsen_until_per_part past the instance size, which
  // would silently disable the multilevel scheme; cap the target at half the fine graph
  // so at least one contraction happens whenever contraction is possible.
  const int coarse_target =
      std::max(64, std::min(config.k * config.coarsen_until_per_part,
                            std::max(64, hg.num_vertices() / 2)));
  CoarsenChain chain;
  CoarseningScratch scratch;
  const Hypergraph* current = &hg;
  const Partition* current_part = incumbent;
  while (current->num_vertices() > coarse_target) {
    CoarseLevel level = CoarsenOnce(*current, config, rng, scratch, current_part);
    if (level.fine_to_coarse.empty()) {
      break;  // No contraction possible.
    }
    const int before = current->num_vertices();
    const int after = level.coarse.num_vertices();
    if (after >= before || after > static_cast<int>(before * 0.95)) {
      break;  // Diminishing returns.
    }
    if (incumbent != nullptr) {
      Partition coarse_part(static_cast<size_t>(after));
      for (VertexId v = 0; v < before; ++v) {
        coarse_part[static_cast<size_t>(level.fine_to_coarse[static_cast<size_t>(v)])] =
            (*current_part)[static_cast<size_t>(v)];
      }
      chain.level_parts.push_back(std::move(coarse_part));
    }
    chain.levels.push_back(std::move(level));
    current = &chain.levels.back().coarse;
    if (incumbent != nullptr) {
      current_part = &chain.level_parts.back();
    }
  }
  return chain;
}

// Seconds elapsed since `start_ns`, advancing `start_ns` to now — the one-line
// idiom the stage decomposition below uses between pipeline steps.
double TakeSeconds(int64_t& start_ns) {
  const int64_t now_ns = metrics::MonotonicNanos();
  const double seconds = static_cast<double>(now_ns - start_ns) * 1e-9;
  start_ns = now_ns;
  return seconds;
}

class MultilevelPartitioner final : public Partitioner {
 public:
  // One multilevel V-cycle: coarsen, initial-partition, uncoarsen with refinement.
  static Partition VCycle(const Hypergraph& hg, const PartitionConfig& config, Rng& rng,
                          PartitionStageSeconds* stages) {
    int64_t mark_ns = metrics::MonotonicNanos();
    CoarsenChain chain = BuildCoarsenChain(hg, config, rng, nullptr);
    const Hypergraph& coarsest =
        chain.levels.empty() ? hg : chain.levels.back().coarse;
    stages->coarsen += TakeSeconds(mark_ns);

    Partition part = ComputeInitialPartition(coarsest, config, rng);
    stages->initial += TakeSeconds(mark_ns);
    FmRefine(coarsest, config, part, rng);

    for (size_t i = chain.levels.size(); i-- > 0;) {
      const Hypergraph& finer = (i == 0) ? hg : chain.levels[i - 1].coarse;
      const std::vector<VertexId>& map = chain.levels[i].fine_to_coarse;
      Partition projected(static_cast<size_t>(finer.num_vertices()));
      for (VertexId v = 0; v < finer.num_vertices(); ++v) {
        projected[static_cast<size_t>(v)] =
            part[static_cast<size_t>(map[static_cast<size_t>(v)])];
      }
      part = std::move(projected);
      FmRefine(finer, config, part, rng);
    }
    stages->refine += TakeSeconds(mark_ns);
    return part;
  }

  // One iterated V-cycle on an incumbent partition: coarsen with merges restricted to
  // same-part vertex pairs (so the incumbent projects losslessly onto every level), then
  // walk back up refining from the projected incumbent. FM only ever applies improving
  // moves, so the result is never worse than the input; coarse-level moves relocate whole
  // clusters at once, escaping local optima the flat refinement cannot.
  static void IteratedVCycle(const Hypergraph& hg, const PartitionConfig& config,
                             Partition& part, Rng& rng,
                             PartitionStageSeconds* stages) {
    int64_t mark_ns = metrics::MonotonicNanos();
    CoarsenChain chain = BuildCoarsenChain(hg, config, rng, &part);
    stages->coarsen += TakeSeconds(mark_ns);
    if (chain.levels.empty()) {
      FmRefine(hg, config, part, rng);
      stages->refine += TakeSeconds(mark_ns);
      return;
    }

    FmRefine(chain.levels.back().coarse, config, chain.level_parts.back(), rng);
    for (size_t i = chain.levels.size(); i-- > 0;) {
      const Hypergraph& finer = (i == 0) ? hg : chain.levels[i - 1].coarse;
      Partition& finer_part = (i == 0) ? part : chain.level_parts[i - 1];
      const std::vector<VertexId>& map = chain.levels[i].fine_to_coarse;
      for (VertexId v = 0; v < finer.num_vertices(); ++v) {
        finer_part[static_cast<size_t>(v)] =
            chain.level_parts[i][static_cast<size_t>(map[static_cast<size_t>(v)])];
      }
      FmRefine(finer, config, finer_part, rng);
    }
    stages->refine += TakeSeconds(mark_ns);
  }

  PartitionResult Run(const Hypergraph& hg, const PartitionConfig& original) const override {
    DCP_CHECK(hg.finalized());
    DCP_CHECK_GE(original.k, 1);
    PartitionResult result;
    if (original.k == 1) {
      result.part.assign(static_cast<size_t>(hg.num_vertices()), 0);
      result.connectivity_cost = 0.0;
      result.balanced = true;
      return result;
    }

    // Large-k regime: past kLargeKThreshold parts, every V-cycle and refinement pass costs
    // proportionally more (bigger gain rows, wider boundaries), while extra portfolio
    // candidates add less — the multilevel candidate dominates. Narrow the portfolio
    // and coarsen deeper so replanning latency stays flat as the cluster grows. The
    // exposed knobs only ever tighten here; callers who want the wide portfolio at
    // large k can still raise the per-field values (the regime takes the min).
    PartitionConfig config = original;
    const bool large_k = original.k >= kLargeKThreshold;
    if (large_k) {
      config.vcycles = std::min(original.vcycles, 1);
      config.initial_tries = std::min(original.initial_tries, 2);
      config.refinement_passes = std::min(original.refinement_passes, 4);
      config.vcycle_iterations = std::min(original.vcycle_iterations, 1);
      config.coarsen_until_per_part = std::min(original.coarsen_until_per_part, 8);
    }

    // Fork one stream per candidate in a fixed order before launching anything, so every
    // candidate is independent of scheduling. Coarsening randomness gives each V-cycle a
    // genuinely different solution-space cut, which matters most on large fine-grained
    // instances; greedy + component packing guarantee the portfolio never loses to the
    // baselines (component packing finds zero-cost data-parallel placements when the
    // batch decomposes into independent sequences). In the large-k regime the refined
    // direct greedy candidate is dropped: its from-scratch flat FM pass is the single
    // most expensive portfolio member there and essentially never beats the V-cycle.
    const int vcycles = std::max(1, config.vcycles);
    Rng rng(config.seed);
    std::vector<Rng> vcycle_rngs;
    vcycle_rngs.reserve(static_cast<size_t>(vcycles));
    for (int c = 0; c < vcycles; ++c) {
      vcycle_rngs.push_back(rng.Fork());
    }
    Rng direct_rng = rng.Fork();
    Rng packed_rng = rng.Fork();
    Rng iterate_rng = rng.Fork();

    const int extras = large_k ? 1 : 2;
    std::vector<Partition> candidates(static_cast<size_t>(vcycles + extras));
    // Each concurrent candidate times its own stages into a private slot; the
    // slots are summed after the join, so the decomposition is a CPU-span sum
    // (it can exceed the portfolio's wall clock) and stays race-free.
    std::vector<PartitionStageSeconds> candidate_stages(candidates.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(candidates.size());
    for (int c = 0; c < vcycles; ++c) {
      tasks.emplace_back([&hg, &config, &vcycle_rngs, &candidates,
                          &candidate_stages, c]() {
        candidates[static_cast<size_t>(c)] =
            VCycle(hg, config, vcycle_rngs[static_cast<size_t>(c)],
                   &candidate_stages[static_cast<size_t>(c)]);
      });
    }
    if (!large_k) {
      tasks.emplace_back([&hg, &config, &direct_rng, &candidates,
                          &candidate_stages, vcycles]() {
        // The direct candidate's greedy solve is an initial partition and its
        // flat FM pass is refinement — bill them to the matching stages.
        PartitionStageSeconds& stages = candidate_stages[static_cast<size_t>(vcycles)];
        int64_t mark_ns = metrics::MonotonicNanos();
        Partition& direct = candidates[static_cast<size_t>(vcycles)];
        direct = GreedyAffinityPartition(hg, config, direct_rng);
        stages.initial += TakeSeconds(mark_ns);
        FmRefine(hg, config, direct, direct_rng);
        stages.refine += TakeSeconds(mark_ns);
      });
    }
    tasks.emplace_back([&hg, &config, &packed_rng, &candidates, &candidate_stages,
                        vcycles, extras]() {
      const size_t slot = static_cast<size_t>(vcycles + extras - 1);
      int64_t mark_ns = metrics::MonotonicNanos();
      candidates[slot] = ComponentPackingPartition(hg, config, packed_rng);
      candidate_stages[slot].initial += TakeSeconds(mark_ns);
    });
    GlobalThreadPool().ParallelInvoke(std::move(tasks));
    for (const PartitionStageSeconds& stages : candidate_stages) {
      result.stages.Accumulate(stages);
    }

    // Fixed-order selection: feasibility first, then connectivity cost, earlier
    // candidate winning ties. The V-cycles are listed first so the multilevel result is
    // preferred at equal score.
    auto score = [&](const Partition& candidate) {
      return std::make_pair(!IsBalanced(hg, candidate, config.k, config.eps),
                            ConnectivityMinusOne(hg, candidate, config.k));
    };
    Partition* best = &candidates[0];
    auto best_score = score(candidates[0]);
    for (size_t i = 1; i < candidates.size(); ++i) {
      auto candidate_score = score(candidates[i]);
      if (candidate_score < best_score) {
        best = &candidates[i];
        best_score = candidate_score;
      }
    }
    result.part = std::move(*best);

    // Iterated V-cycles on the winner: each round re-coarsens around the incumbent and
    // re-refines from it. Kept only on strict improvement; stops as soon as a round
    // stalls, so converged instances pay for exactly one extra (cheap) cycle.
    for (int round = 0; round < config.vcycle_iterations; ++round) {
      Partition trial = result.part;
      IteratedVCycle(hg, config, trial, iterate_rng, &result.stages);
      auto trial_score = score(trial);
      if (trial_score < best_score) {
        result.part = std::move(trial);
        best_score = trial_score;
      } else {
        break;
      }
    }

    result.connectivity_cost = best_score.second;
    result.balanced = !best_score.first;
    return result;
  }

  std::string name() const override { return "multilevel"; }
};

}  // namespace

std::unique_ptr<Partitioner> MakeMultilevelPartitioner() {
  return std::make_unique<MultilevelPartitioner>();
}

}  // namespace dcp
