// Multilevel k-way hypergraph partitioner: coarsen with heavy-connectivity clustering,
// partition the coarsest graph with a randomized portfolio, then uncoarsen with FM
// refinement at every level. This is the stand-in for KaHyPar used by the paper (§4.2).
#include <algorithm>

#include "common/check.h"
#include "hypergraph/internal.h"
#include "hypergraph/metrics.h"

namespace dcp {
namespace {

class MultilevelPartitioner final : public Partitioner {
 public:
  // One multilevel V-cycle: coarsen, initial-partition, uncoarsen with refinement.
  static Partition VCycle(const Hypergraph& hg, const PartitionConfig& config, Rng& rng) {
    const int coarse_target = std::max(64, config.k * config.coarsen_until_per_part);
    std::vector<CoarseLevel> levels;
    const Hypergraph* current = &hg;
    while (current->num_vertices() > coarse_target) {
      CoarseLevel level = CoarsenOnce(*current, config, rng);
      if (level.fine_to_coarse.empty()) {
        break;  // No contraction possible.
      }
      const int before = current->num_vertices();
      const int after = level.coarse.num_vertices();
      if (after >= before || after > static_cast<int>(before * 0.95)) {
        break;  // Diminishing returns.
      }
      levels.push_back(std::move(level));
      current = &levels.back().coarse;
    }

    Partition part = ComputeInitialPartition(*current, config, rng);
    FmRefine(*current, config, part, rng);

    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const Hypergraph& finer =
          (std::next(it) == levels.rend()) ? hg : std::next(it)->coarse;
      Partition projected(static_cast<size_t>(finer.num_vertices()));
      for (VertexId v = 0; v < finer.num_vertices(); ++v) {
        projected[static_cast<size_t>(v)] =
            part[static_cast<size_t>(it->fine_to_coarse[static_cast<size_t>(v)])];
      }
      part = std::move(projected);
      FmRefine(finer, config, part, rng);
    }
    return part;
  }

  PartitionResult Run(const Hypergraph& hg, const PartitionConfig& config) const override {
    DCP_CHECK(hg.finalized());
    DCP_CHECK_GE(config.k, 1);
    Rng rng(config.seed);
    PartitionResult result;
    if (config.k == 1) {
      result.part.assign(static_cast<size_t>(hg.num_vertices()), 0);
      result.connectivity_cost = 0.0;
      result.balanced = true;
      return result;
    }

    // Two V-cycles with independent random streams; coarsening randomness gives genuinely
    // different solution-space cuts, which matters most on large fine-grained instances.
    Partition part = VCycle(hg, config, rng);
    {
      Rng second_rng = rng.Fork();
      Partition second = VCycle(hg, config, second_rng);
      const bool first_balanced = IsBalanced(hg, part, config.k, config.eps);
      const bool second_balanced = IsBalanced(hg, second, config.k, config.eps);
      const double first_cost = ConnectivityMinusOne(hg, part, config.k);
      const double second_cost = ConnectivityMinusOne(hg, second, config.k);
      if ((second_balanced && !first_balanced) ||
          (second_balanced == first_balanced && second_cost < first_cost)) {
        part = std::move(second);
      }
    }
    // Portfolio: compare the multilevel result against (a) a refined direct greedy
    // solution and (b) component packing (which finds zero-cost data-parallel placements
    // when the batch decomposes into independent sequences). Feasibility first, then
    // connectivity cost. This guarantees the result never loses to the greedy baseline.
    Partition direct = GreedyAffinityPartition(hg, config, rng);
    FmRefine(hg, config, direct, rng);
    Partition packed = ComponentPackingPartition(hg, config, rng);

    auto score = [&](const Partition& candidate) {
      return std::make_pair(!IsBalanced(hg, candidate, config.k, config.eps),
                            ConnectivityMinusOne(hg, candidate, config.k));
    };
    Partition* best = &part;
    auto best_score = score(part);
    for (Partition* candidate : {&direct, &packed}) {
      auto candidate_score = score(*candidate);
      if (candidate_score < best_score) {
        best = candidate;
        best_score = candidate_score;
      }
    }
    result.part = std::move(*best);
    result.connectivity_cost = best_score.second;
    result.balanced = !best_score.first;
    return result;
  }

  std::string name() const override { return "multilevel"; }
};

}  // namespace

std::unique_ptr<Partitioner> MakeMultilevelPartitioner() {
  return std::make_unique<MultilevelPartitioner>();
}

}  // namespace dcp
