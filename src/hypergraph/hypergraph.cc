#include "hypergraph/hypergraph.h"

#include "common/check.h"

namespace dcp {

VertexId Hypergraph::AddVertex(double compute_weight, double data_weight) {
  DCP_CHECK(!finalized_);
  vertex_weights_.push_back({compute_weight, data_weight});
  return static_cast<VertexId>(vertex_weights_.size() - 1);
}

EdgeId Hypergraph::AddEdge(double weight, std::vector<VertexId> pins) {
  DCP_CHECK(!finalized_);
  DCP_CHECK(!pins.empty());
  for (VertexId v : pins) {
    DCP_CHECK(v >= 0 && v < num_vertices()) << "edge pin out of range";
    pins_.push_back(v);
  }
  edge_offsets_.push_back(static_cast<int64_t>(pins_.size()));
  edge_weights_.push_back(weight);
  return static_cast<EdgeId>(edge_weights_.size() - 1);
}

void Hypergraph::Finalize() {
  DCP_CHECK(!finalized_);
  const size_t v_count = vertex_weights_.size();
  vertex_offsets_.assign(v_count + 1, 0);
  for (VertexId v : pins_) {
    ++vertex_offsets_[static_cast<size_t>(v) + 1];
  }
  for (size_t i = 1; i <= v_count; ++i) {
    vertex_offsets_[i] += vertex_offsets_[i - 1];
  }
  incident_edges_.resize(pins_.size());
  std::vector<int64_t> cursor(vertex_offsets_.begin(), vertex_offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    for (int64_t p = edge_offsets_[static_cast<size_t>(e)];
         p < edge_offsets_[static_cast<size_t>(e) + 1]; ++p) {
      const VertexId v = pins_[static_cast<size_t>(p)];
      incident_edges_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = e;
    }
  }
  total_weight_ = {0.0, 0.0};
  for (const VertexWeight& w : vertex_weights_) {
    total_weight_[0] += w[0];
    total_weight_[1] += w[1];
  }
  total_edge_weight_ = 0.0;
  for (double w : edge_weights_) {
    total_edge_weight_ += w;
  }
  finalized_ = true;
}

std::pair<const VertexId*, const VertexId*> Hypergraph::EdgePins(EdgeId e) const {
  const int64_t lo = edge_offsets_[static_cast<size_t>(e)];
  const int64_t hi = edge_offsets_[static_cast<size_t>(e) + 1];
  return {pins_.data() + lo, pins_.data() + hi};
}

int Hypergraph::EdgeSize(EdgeId e) const {
  return static_cast<int>(edge_offsets_[static_cast<size_t>(e) + 1] -
                          edge_offsets_[static_cast<size_t>(e)]);
}

std::pair<const EdgeId*, const EdgeId*> Hypergraph::VertexEdges(VertexId v) const {
  DCP_CHECK(finalized_);
  const int64_t lo = vertex_offsets_[static_cast<size_t>(v)];
  const int64_t hi = vertex_offsets_[static_cast<size_t>(v) + 1];
  return {incident_edges_.data() + lo, incident_edges_.data() + hi};
}

int Hypergraph::VertexDegree(VertexId v) const {
  DCP_CHECK(finalized_);
  return static_cast<int>(vertex_offsets_[static_cast<size_t>(v) + 1] -
                          vertex_offsets_[static_cast<size_t>(v)]);
}

const VertexWeight& Hypergraph::TotalWeight() const {
  DCP_DCHECK(finalized_);
  return total_weight_;
}

double Hypergraph::TotalEdgeWeight() const {
  DCP_DCHECK(finalized_);
  return total_edge_weight_;
}

}  // namespace dcp
