// Partition quality metrics: the connectivity-minus-one objective (== total communication
// volume of the represented placement, paper §4.2) and 2-dimensional balance.
#ifndef DCP_HYPERGRAPH_METRICS_H_
#define DCP_HYPERGRAPH_METRICS_H_

#include <vector>

#include "hypergraph/hypergraph.h"

namespace dcp {

// Sum over edges of w_e * (lambda_e - 1), lambda_e = number of distinct parts among pins.
double ConnectivityMinusOne(const Hypergraph& hg, const Partition& part, int k);

// Number of distinct parts spanned by edge e.
int EdgeConnectivity(const Hypergraph& hg, const Partition& part, int k, EdgeId e);

// Total vertex weight per part.
std::vector<VertexWeight> PartWeights(const Hypergraph& hg, const Partition& part, int k);

// Maximum over parts and weight dimensions of w(P_i)[d] / (total[d] / k).
// 1.0 == perfectly balanced in the heavier dimension.
double MaxImbalance(const Hypergraph& hg, const Partition& part, int k);
// Per-dimension variant.
std::array<double, 2> MaxImbalancePerDim(const Hypergraph& hg, const Partition& part, int k);

// Checks w(P_i)[d] <= (1 + eps[d]) * total[d] / k for all parts/dims.
bool IsBalanced(const Hypergraph& hg, const Partition& part, int k,
                const std::array<double, 2>& eps);

}  // namespace dcp

#endif  // DCP_HYPERGRAPH_METRICS_H_
