// Heavy-connectivity clustering coarsening (hMETIS/KaHyPar family), run as synchronous
// rounds so the expensive part parallelizes deterministically:
//
//  Phase 1 (parallel, read-only): every still-unmerged cluster representative scores the
//  neighbouring clusters by summed connectivity sum(w_e / (|e| - 1)) over its incident
//  edges — against an immutable snapshot of the current clustering — and records its
//  preferred merge target (ties to the lowest cluster id). The phase splits over
//  fixed-size vertex ranges on the thread pool; chunk boundaries depend on the vertex
//  count and config.coarsening_grain, never on the pool size, so the result is
//  bit-identical for any thread count.
//
//  Phase 2 (serial, cheap): representatives are visited in random order and merged into
//  their preferred target's current cluster, subject to a cluster weight cap that keeps
//  the coarsest graph partitionable within the balance tolerance.
//
// Rounds repeat (bounded) until merges dry up. The rounds recover what vertex-by-vertex
// sequential clustering got from seeing earlier merges immediately: preference conflicts
// (many vertices electing the same hub) resolve in the next round against the updated
// clustering instead of stalling contraction.
//
// All working memory lives in the caller-provided CoarseningScratch: score accumulation
// uses per-chunk timestamped flat arrays instead of hash maps, and coarse-edge dedup
// sorts a flat (hash, pins) edge store instead of hashing vectors, so a V-cycle's
// coarsening chain performs no per-level allocations once the first level has sized the
// buffers.
#include <algorithm>
#include <functional>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"
#include "hypergraph/internal.h"

namespace dcp {
namespace {

uint64_t HashPins(const VertexId* begin, const VertexId* end) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const VertexId* p = begin; p != end; ++p) {
    h ^= static_cast<uint64_t>(*p) + 0x9E3779B9ull + (h << 6) + (h >> 2);
  }
  return h;
}

// Edges this large carry no clustering signal and would make scoring quadratic.
constexpr int kMaxScoredEdgeSize = 512;

// Synchronous matching rounds per level; contraction usually saturates in two.
constexpr int kMaxRounds = 4;

// Phase 1 worker: fills preference[v] for representatives in [begin, end) against the
// (frozen) cluster snapshot, using its own accumulator. `cluster` must be fully path
// compressed, so cluster[u] IS u's representative.
void ScoreRange(const Hypergraph& hg, const Partition* restrict_part,
                const std::vector<VertexId>& cluster,
                const std::vector<VertexWeight>& cluster_weight,
                const std::array<double, 2>& cluster_cap, size_t begin, size_t end,
                ScoreAccumulator& accum, std::vector<VertexId>& preference,
                const std::vector<uint8_t>* retry) {
  const size_t n = static_cast<size_t>(hg.num_vertices());
  accum.score.resize(n, 0.0);
  accum.stamp.resize(n, 0);
  for (size_t vi = begin; vi < end; ++vi) {
    const VertexId v = static_cast<VertexId>(vi);
    if (retry != nullptr && !(*retry)[vi]) {
      continue;  // Keeps its round-1 outcome; only conflict losers re-score.
    }
    preference[vi] = -1;
    if (cluster[vi] != v) {
      continue;  // Not a representative: already merged in an earlier round.
    }
    const uint64_t epoch = ++accum.epoch;
    accum.touched.clear();
    auto [ebegin, eend] = hg.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      const int size = hg.EdgeSize(*ep);
      if (size <= 1 || size > kMaxScoredEdgeSize) {
        continue;
      }
      const double edge_score = hg.edge_weight(*ep) / (size - 1);
      auto [pbegin, pend] = hg.EdgePins(*ep);
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        const VertexId c = cluster[static_cast<size_t>(*pp)];
        if (c == v) {
          continue;
        }
        if (restrict_part != nullptr &&
            (*restrict_part)[static_cast<size_t>(c)] !=
                (*restrict_part)[static_cast<size_t>(v)]) {
          continue;  // Merges must preserve the incumbent partition.
        }
        if (accum.stamp[static_cast<size_t>(c)] != epoch) {
          accum.stamp[static_cast<size_t>(c)] = epoch;
          accum.score[static_cast<size_t>(c)] = 0.0;
          accum.touched.push_back(c);
        }
        accum.score[static_cast<size_t>(c)] += edge_score;
      }
    }
    VertexId best = -1;
    double best_score = 0.0;
    const VertexWeight& vw = cluster_weight[vi];
    for (VertexId candidate : accum.touched) {
      const VertexWeight& cw = cluster_weight[static_cast<size_t>(candidate)];
      if (cw[0] + vw[0] > cluster_cap[0] || cw[1] + vw[1] > cluster_cap[1]) {
        continue;  // Snapshot prefilter; phase 2 re-checks against live weights.
      }
      const double s = accum.score[static_cast<size_t>(candidate)];
      if (s > best_score || (s == best_score && best >= 0 && candidate < best)) {
        best = candidate;
        best_score = s;
      }
    }
    preference[vi] = best;
  }
}

}  // namespace

CoarseLevel CoarsenOnce(const Hypergraph& hg, const PartitionConfig& config, Rng& rng,
                        CoarseningScratch& scratch, const Partition* restrict_part) {
  const int n = hg.num_vertices();
  const VertexWeight& total = hg.TotalWeight();
  const std::array<double, 2> cluster_cap = {
      total[0] / config.k * config.max_cluster_weight_frac,
      total[1] / config.k * config.max_cluster_weight_frac,
  };

  std::vector<VertexId>& cluster = scratch.cluster;
  cluster.resize(static_cast<size_t>(n));
  std::iota(cluster.begin(), cluster.end(), 0);
  std::vector<VertexWeight>& cluster_weight = scratch.cluster_weight;
  cluster_weight.resize(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    cluster_weight[static_cast<size_t>(v)] = hg.vertex_weight(v);
  }

  std::vector<VertexId>& order = scratch.order;
  order.resize(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  // Representative lookup with path compression (clusters form short chains as
  // representatives themselves merge later in a round).
  auto find_rep = [&cluster](VertexId v) {
    VertexId rep = v;
    while (cluster[static_cast<size_t>(rep)] != rep) {
      rep = cluster[static_cast<size_t>(rep)];
    }
    while (cluster[static_cast<size_t>(v)] != rep) {
      VertexId next = cluster[static_cast<size_t>(v)];
      cluster[static_cast<size_t>(v)] = rep;
      v = next;
    }
    return rep;
  };

  std::vector<VertexId>& preference = scratch.preference;
  preference.resize(static_cast<size_t>(n));
  std::vector<uint8_t>& retry = scratch.retry;
  retry.assign(static_cast<size_t>(n), 0);
  const size_t grain = static_cast<size_t>(std::max(64, config.coarsening_grain));
  const size_t chunks = (static_cast<size_t>(n) + grain - 1) / grain;
  if (scratch.accumulators.size() < chunks) {
    scratch.accumulators.resize(chunks);
  }

  int merges = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    // Full path compression so phase 1 can read representatives with one load.
    for (VertexId v = 0; v < n; ++v) {
      find_rep(v);
    }

    // --- Phase 1: parallel preference scoring over fixed vertex ranges. ---
    // Rounds after the first only re-score representatives whose merge failed last
    // round (preference conflicts, weight-cap collisions): everyone else either merged,
    // or had no viable candidate — and candidates only get heavier as clusters grow.
    const std::vector<uint8_t>* retry_filter = round == 0 ? nullptr : &retry;
    GlobalThreadPool().ParallelFor(
        static_cast<size_t>(n), grain,
        [&](size_t begin, size_t end, size_t chunk) {
          ScoreRange(hg, restrict_part, cluster, cluster_weight, cluster_cap, begin, end,
                     scratch.accumulators[chunk], preference, retry_filter);
        });

    // --- Phase 2: serial random-order merging against live cluster weights. ---
    int round_merges = 0;
    for (VertexId v : order) {
      retry[static_cast<size_t>(v)] = 0;
      if (cluster[static_cast<size_t>(v)] != v) {
        continue;  // Merged in an earlier round (or earlier this round).
      }
      const VertexId pref = preference[static_cast<size_t>(v)];
      if (pref < 0) {
        continue;
      }
      const VertexId target = find_rep(pref);
      if (target == v) {
        retry[static_cast<size_t>(v)] = 1;  // Partner collapsed into v; rescore.
        continue;
      }
      const VertexWeight& vw = cluster_weight[static_cast<size_t>(v)];
      const VertexWeight& tw = cluster_weight[static_cast<size_t>(target)];
      if (vw[0] + tw[0] > cluster_cap[0] || vw[1] + tw[1] > cluster_cap[1]) {
        retry[static_cast<size_t>(v)] = 1;  // Cap collision; rescore next round.
        continue;
      }
      cluster[static_cast<size_t>(v)] = target;
      cluster_weight[static_cast<size_t>(target)][0] += vw[0];
      cluster_weight[static_cast<size_t>(target)][1] += vw[1];
      ++round_merges;
    }
    merges += round_merges;
    if (round_merges <= n / 64) {
      break;  // Contraction dried up; further rounds would only re-score survivors.
    }
  }

  CoarseLevel level;
  if (merges == 0) {
    return level;  // Caller detects empty mapping => no contraction possible.
  }
  level.fine_to_coarse.assign(static_cast<size_t>(n), -1);

  // Compact cluster ids. Cluster representatives are vertices with cluster[v] == v; others
  // reach their representative through find_rep (chains are path-compressed on the fly).
  std::vector<VertexId>& compact = scratch.compact;
  compact.assign(static_cast<size_t>(n), -1);
  VertexId next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (cluster[static_cast<size_t>(v)] == v) {
      compact[static_cast<size_t>(v)] = next_id++;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    level.fine_to_coarse[static_cast<size_t>(v)] = compact[static_cast<size_t>(find_rep(v))];
    DCP_CHECK_GE(level.fine_to_coarse[static_cast<size_t>(v)], 0);
  }

  // Coarse vertex weights.
  std::vector<VertexWeight> coarse_weights(static_cast<size_t>(next_id),
                                           VertexWeight{0.0, 0.0});
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = level.fine_to_coarse[static_cast<size_t>(v)];
    coarse_weights[static_cast<size_t>(c)][0] += hg.vertex_weight(v)[0];
    coarse_weights[static_cast<size_t>(c)][1] += hg.vertex_weight(v)[1];
  }
  for (const VertexWeight& w : coarse_weights) {
    level.coarse.AddVertex(w[0], w[1]);
  }

  // Coarse edges: remap pins, dedupe within an edge, drop singletons. Surviving edges go
  // into a flat (offsets, pins, weight, hash) store; identical pin sets are then merged by
  // sorting edge indices by (hash, pins) and summing weights over equal runs. This keeps
  // the coarse edge order deterministic across platforms (unlike hash-map iteration).
  scratch.edge_offsets.clear();
  scratch.edge_offsets.push_back(0);
  scratch.edge_pins.clear();
  scratch.edge_weights.clear();
  scratch.edge_hashes.clear();
  std::vector<VertexId>& pins = scratch.pin_buf;
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    pins.clear();
    auto [pbegin, pend] = hg.EdgePins(e);
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      pins.push_back(level.fine_to_coarse[static_cast<size_t>(*pp)]);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() <= 1) {
      continue;  // Fully internal edge: can never be cut again.
    }
    scratch.edge_pins.insert(scratch.edge_pins.end(), pins.begin(), pins.end());
    scratch.edge_offsets.push_back(static_cast<int64_t>(scratch.edge_pins.size()));
    scratch.edge_weights.push_back(hg.edge_weight(e));
    scratch.edge_hashes.push_back(HashPins(pins.data(), pins.data() + pins.size()));
  }

  const int32_t kept = static_cast<int32_t>(scratch.edge_weights.size());
  scratch.edge_order.resize(static_cast<size_t>(kept));
  std::iota(scratch.edge_order.begin(), scratch.edge_order.end(), 0);
  auto edge_pins_of = [&scratch](int32_t i) {
    return std::make_pair(
        scratch.edge_pins.data() + scratch.edge_offsets[static_cast<size_t>(i)],
        scratch.edge_pins.data() + scratch.edge_offsets[static_cast<size_t>(i) + 1]);
  };
  // TOTAL order — ties on (hash, pins) break on the edge index — so the sorted
  // permutation is unique: any correct sort produces bit-identical output, and
  // duplicate pin sets merge their weights in original edge order on every platform
  // and thread count.
  auto edge_less = [&](int32_t a, int32_t b) {
    if (scratch.edge_hashes[static_cast<size_t>(a)] !=
        scratch.edge_hashes[static_cast<size_t>(b)]) {
      return scratch.edge_hashes[static_cast<size_t>(a)] <
             scratch.edge_hashes[static_cast<size_t>(b)];
    }
    auto [ab, ae] = edge_pins_of(a);
    auto [bb, be] = edge_pins_of(b);
    if (std::lexicographical_compare(ab, ae, bb, be)) {
      return true;
    }
    if (std::lexicographical_compare(bb, be, ab, ae)) {
      return false;
    }
    return a < b;
  };
  // Parallel dedup sort: fixed-size runs (boundaries depend only on the edge count and
  // grain, never the pool size) are sorted on the pool, then merged in a deterministic
  // binary tree whose same-level merges touch disjoint ranges and run in parallel.
  const size_t kept_sz = static_cast<size_t>(kept);
  const size_t sort_grain = grain * 4;  // Edges outnumber vertices; coarser chunks.
  GlobalThreadPool().ParallelFor(kept_sz, sort_grain,
                                 [&](size_t begin, size_t end, size_t) {
                                   std::sort(scratch.edge_order.begin() +
                                                 static_cast<int64_t>(begin),
                                             scratch.edge_order.begin() +
                                                 static_cast<int64_t>(end),
                                             edge_less);
                                 });
  for (size_t width = sort_grain; width < kept_sz; width *= 2) {
    std::vector<std::function<void()>> merges;
    for (size_t lo = 0; lo + width < kept_sz; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, kept_sz);
      merges.push_back([lo, mid, hi, &scratch, &edge_less] {
        std::inplace_merge(scratch.edge_order.begin() + static_cast<int64_t>(lo),
                           scratch.edge_order.begin() + static_cast<int64_t>(mid),
                           scratch.edge_order.begin() + static_cast<int64_t>(hi),
                           edge_less);
      });
    }
    if (!merges.empty()) {
      GlobalThreadPool().ParallelInvoke(std::move(merges));
    }
  }
  std::vector<VertexId> merged_pins;
  std::vector<double> run_weights;
  for (int32_t i = 0; i < kept;) {
    auto [pb, pe] = edge_pins_of(scratch.edge_order[static_cast<size_t>(i)]);
    int32_t j = i + 1;
    for (; j < kept; ++j) {
      auto [qb, qe] = edge_pins_of(scratch.edge_order[static_cast<size_t>(j)]);
      if (pe - pb != qe - qb || !std::equal(pb, pe, qb)) {
        break;
      }
    }
    // Sum the run's weights in ascending VALUE order: canonical regardless of how the
    // duplicates were ordered in the fine graph, so the coarse weight (and everything
    // the partitioner derives from it) is a pure function of the edge multiset.
    run_weights.clear();
    for (int32_t r = i; r < j; ++r) {
      run_weights.push_back(scratch.edge_weights[static_cast<size_t>(
          scratch.edge_order[static_cast<size_t>(r)])]);
    }
    std::sort(run_weights.begin(), run_weights.end());
    double weight = 0.0;
    for (double w : run_weights) {
      weight += w;
    }
    merged_pins.assign(pb, pe);
    level.coarse.AddEdge(weight, merged_pins);
    i = j;
  }
  level.coarse.Finalize();
  return level;
}

}  // namespace dcp
