// Heavy-connectivity clustering coarsening (hMETIS/KaHyPar family). Each pass visits
// vertices in random order and merges each into the neighbouring cluster with the highest
// connectivity score sum(w_e / (|e| - 1)), subject to a cluster weight cap that keeps the
// coarsest graph partitionable within the balance tolerance.
//
// All working memory lives in the caller-provided CoarseningScratch: score accumulation
// uses a timestamped flat array instead of a hash map, and coarse-edge dedup sorts a flat
// (hash, pins) edge store instead of hashing vectors, so a V-cycle's coarsening chain
// performs no per-level allocations once the first level has sized the buffers.
#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "hypergraph/internal.h"

namespace dcp {
namespace {

uint64_t HashPins(const VertexId* begin, const VertexId* end) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const VertexId* p = begin; p != end; ++p) {
    h ^= static_cast<uint64_t>(*p) + 0x9E3779B9ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

CoarseLevel CoarsenOnce(const Hypergraph& hg, const PartitionConfig& config, Rng& rng,
                        CoarseningScratch& scratch, const Partition* restrict_part) {
  const int n = hg.num_vertices();
  const VertexWeight& total = hg.TotalWeight();
  const std::array<double, 2> cluster_cap = {
      total[0] / config.k * config.max_cluster_weight_frac,
      total[1] / config.k * config.max_cluster_weight_frac,
  };

  // Union-find-free clustering: cluster id per vertex, cluster weights tracked directly.
  std::vector<VertexId>& cluster = scratch.cluster;
  cluster.resize(static_cast<size_t>(n));
  std::iota(cluster.begin(), cluster.end(), 0);
  std::vector<VertexWeight>& cluster_weight = scratch.cluster_weight;
  cluster_weight.resize(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    cluster_weight[static_cast<size_t>(v)] = hg.vertex_weight(v);
  }

  std::vector<VertexId>& order = scratch.order;
  order.resize(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  // Representative lookup with path compression (clusters form short chains as
  // representatives themselves merge later in the pass).
  auto find_rep = [&cluster](VertexId v) {
    VertexId rep = v;
    while (cluster[static_cast<size_t>(rep)] != rep) {
      rep = cluster[static_cast<size_t>(rep)];
    }
    while (cluster[static_cast<size_t>(v)] != rep) {
      VertexId next = cluster[static_cast<size_t>(v)];
      cluster[static_cast<size_t>(v)] = rep;
      v = next;
    }
    return rep;
  };

  // Timestamped scratch: connectivity score per candidate cluster. An entry is live only
  // when its stamp equals the current epoch, so resetting between vertices is one
  // increment rather than a clear.
  scratch.score.resize(static_cast<size_t>(n), 0.0);
  scratch.score_stamp.resize(static_cast<size_t>(n), 0);
  std::vector<VertexId>& touched = scratch.touched;
  int merges = 0;
  for (VertexId v : order) {
    if (cluster[static_cast<size_t>(v)] != v) {
      continue;  // Already merged into another cluster this pass.
    }
    const uint64_t epoch = ++scratch.epoch;
    touched.clear();
    auto [ebegin, eend] = hg.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      const int size = hg.EdgeSize(*ep);
      if (size <= 1 || size > 512) {
        continue;  // Singleton edges carry no clustering signal; huge edges are noise.
      }
      const double edge_score = hg.edge_weight(*ep) / (size - 1);
      auto [pbegin, pend] = hg.EdgePins(*ep);
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        const VertexId c = find_rep(*pp);
        if (c == v) {
          continue;
        }
        if (scratch.score_stamp[static_cast<size_t>(c)] != epoch) {
          scratch.score_stamp[static_cast<size_t>(c)] = epoch;
          scratch.score[static_cast<size_t>(c)] = 0.0;
          touched.push_back(c);
        }
        scratch.score[static_cast<size_t>(c)] += edge_score;
      }
    }
    VertexId best = -1;
    double best_score = 0.0;
    const VertexWeight& vw = cluster_weight[static_cast<size_t>(v)];
    for (VertexId candidate : touched) {
      if (restrict_part != nullptr &&
          (*restrict_part)[static_cast<size_t>(candidate)] !=
              (*restrict_part)[static_cast<size_t>(v)]) {
        continue;  // Cluster parts stay uniform: reps never change part mid-pass.
      }
      const double s = scratch.score[static_cast<size_t>(candidate)];
      const VertexWeight& cw = cluster_weight[static_cast<size_t>(candidate)];
      if (cw[0] + vw[0] > cluster_cap[0] || cw[1] + vw[1] > cluster_cap[1]) {
        continue;
      }
      if (s > best_score || (s == best_score && candidate < best)) {
        best = candidate;
        best_score = s;
      }
    }
    if (best >= 0) {
      cluster[static_cast<size_t>(v)] = best;
      cluster_weight[static_cast<size_t>(best)][0] += vw[0];
      cluster_weight[static_cast<size_t>(best)][1] += vw[1];
      ++merges;
    }
  }

  CoarseLevel level;
  if (merges == 0) {
    return level;  // Caller detects empty mapping => no contraction possible.
  }
  level.fine_to_coarse.assign(static_cast<size_t>(n), -1);

  // Compact cluster ids. Cluster representatives are vertices with cluster[v] == v; others
  // point directly at their representative (single-level chains by construction).
  std::vector<VertexId>& compact = scratch.compact;
  compact.assign(static_cast<size_t>(n), -1);
  VertexId next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (cluster[static_cast<size_t>(v)] == v) {
      compact[static_cast<size_t>(v)] = next_id++;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    level.fine_to_coarse[static_cast<size_t>(v)] = compact[static_cast<size_t>(find_rep(v))];
    DCP_CHECK_GE(level.fine_to_coarse[static_cast<size_t>(v)], 0);
  }

  // Coarse vertex weights.
  std::vector<VertexWeight> coarse_weights(static_cast<size_t>(next_id),
                                           VertexWeight{0.0, 0.0});
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = level.fine_to_coarse[static_cast<size_t>(v)];
    coarse_weights[static_cast<size_t>(c)][0] += hg.vertex_weight(v)[0];
    coarse_weights[static_cast<size_t>(c)][1] += hg.vertex_weight(v)[1];
  }
  for (const VertexWeight& w : coarse_weights) {
    level.coarse.AddVertex(w[0], w[1]);
  }

  // Coarse edges: remap pins, dedupe within an edge, drop singletons. Surviving edges go
  // into a flat (offsets, pins, weight, hash) store; identical pin sets are then merged by
  // sorting edge indices by (hash, pins) and summing weights over equal runs. This keeps
  // the coarse edge order deterministic across platforms (unlike hash-map iteration).
  scratch.edge_offsets.clear();
  scratch.edge_offsets.push_back(0);
  scratch.edge_pins.clear();
  scratch.edge_weights.clear();
  scratch.edge_hashes.clear();
  std::vector<VertexId>& pins = scratch.pin_buf;
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    pins.clear();
    auto [pbegin, pend] = hg.EdgePins(e);
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      pins.push_back(level.fine_to_coarse[static_cast<size_t>(*pp)]);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() <= 1) {
      continue;  // Fully internal edge: can never be cut again.
    }
    scratch.edge_pins.insert(scratch.edge_pins.end(), pins.begin(), pins.end());
    scratch.edge_offsets.push_back(static_cast<int64_t>(scratch.edge_pins.size()));
    scratch.edge_weights.push_back(hg.edge_weight(e));
    scratch.edge_hashes.push_back(HashPins(pins.data(), pins.data() + pins.size()));
  }

  const int32_t kept = static_cast<int32_t>(scratch.edge_weights.size());
  scratch.edge_order.resize(static_cast<size_t>(kept));
  std::iota(scratch.edge_order.begin(), scratch.edge_order.end(), 0);
  auto edge_pins_of = [&scratch](int32_t i) {
    return std::make_pair(
        scratch.edge_pins.data() + scratch.edge_offsets[static_cast<size_t>(i)],
        scratch.edge_pins.data() + scratch.edge_offsets[static_cast<size_t>(i) + 1]);
  };
  std::sort(scratch.edge_order.begin(), scratch.edge_order.end(),
            [&](int32_t a, int32_t b) {
              if (scratch.edge_hashes[static_cast<size_t>(a)] !=
                  scratch.edge_hashes[static_cast<size_t>(b)]) {
                return scratch.edge_hashes[static_cast<size_t>(a)] <
                       scratch.edge_hashes[static_cast<size_t>(b)];
              }
              auto [ab, ae] = edge_pins_of(a);
              auto [bb, be] = edge_pins_of(b);
              return std::lexicographical_compare(ab, ae, bb, be);
            });
  std::vector<VertexId> merged_pins;
  for (int32_t i = 0; i < kept;) {
    auto [pb, pe] = edge_pins_of(scratch.edge_order[static_cast<size_t>(i)]);
    double weight = scratch.edge_weights[static_cast<size_t>(
        scratch.edge_order[static_cast<size_t>(i)])];
    int32_t j = i + 1;
    for (; j < kept; ++j) {
      auto [qb, qe] = edge_pins_of(scratch.edge_order[static_cast<size_t>(j)]);
      if (pe - pb != qe - qb || !std::equal(pb, pe, qb)) {
        break;
      }
      weight += scratch.edge_weights[static_cast<size_t>(
          scratch.edge_order[static_cast<size_t>(j)])];
    }
    merged_pins.assign(pb, pe);
    level.coarse.AddEdge(weight, merged_pins);
    i = j;
  }
  level.coarse.Finalize();
  return level;
}

}  // namespace dcp
