// Heavy-connectivity clustering coarsening (hMETIS/KaHyPar family). Each pass visits
// vertices in random order and merges each into the neighbouring cluster with the highest
// connectivity score sum(w_e / (|e| - 1)), subject to a cluster weight cap that keeps the
// coarsest graph partitionable within the balance tolerance.
#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "hypergraph/internal.h"

namespace dcp {
namespace {

// Hash for dedup of coarse edges with identical pin sets.
struct PinSetHash {
  size_t operator()(const std::vector<VertexId>& pins) const {
    size_t h = 0x9E3779B97F4A7C15ull;
    for (VertexId v : pins) {
      h ^= static_cast<size_t>(v) + 0x9E3779B9ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

CoarseLevel CoarsenOnce(const Hypergraph& hg, const PartitionConfig& config, Rng& rng) {
  const int n = hg.num_vertices();
  const VertexWeight total = hg.TotalWeight();
  const std::array<double, 2> cluster_cap = {
      total[0] / config.k * config.max_cluster_weight_frac,
      total[1] / config.k * config.max_cluster_weight_frac,
  };

  // Union-find-free clustering: cluster id per vertex, cluster weights tracked directly.
  std::vector<VertexId> cluster(static_cast<size_t>(n));
  std::iota(cluster.begin(), cluster.end(), 0);
  std::vector<VertexWeight> cluster_weight(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    cluster_weight[static_cast<size_t>(v)] = hg.vertex_weight(v);
  }

  std::vector<VertexId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  // Representative lookup with path compression (clusters form short chains as
  // representatives themselves merge later in the pass).
  auto find_rep = [&cluster](VertexId v) {
    VertexId rep = v;
    while (cluster[static_cast<size_t>(rep)] != rep) {
      rep = cluster[static_cast<size_t>(rep)];
    }
    while (cluster[static_cast<size_t>(v)] != rep) {
      VertexId next = cluster[static_cast<size_t>(v)];
      cluster[static_cast<size_t>(v)] = rep;
      v = next;
    }
    return rep;
  };

  // Scratch: connectivity score per candidate cluster (sparse accumulation).
  std::unordered_map<VertexId, double> score;
  int merges = 0;
  for (VertexId v : order) {
    if (cluster[static_cast<size_t>(v)] != v) {
      continue;  // Already merged into another cluster this pass.
    }
    score.clear();
    auto [ebegin, eend] = hg.VertexEdges(v);
    for (const EdgeId* ep = ebegin; ep != eend; ++ep) {
      const int size = hg.EdgeSize(*ep);
      if (size <= 1 || size > 512) {
        continue;  // Singleton edges carry no clustering signal; huge edges are noise.
      }
      const double edge_score = hg.edge_weight(*ep) / (size - 1);
      auto [pbegin, pend] = hg.EdgePins(*ep);
      for (const VertexId* pp = pbegin; pp != pend; ++pp) {
        const VertexId c = find_rep(*pp);
        if (c != v) {
          score[c] += edge_score;
        }
      }
    }
    VertexId best = -1;
    double best_score = 0.0;
    const VertexWeight& vw = cluster_weight[static_cast<size_t>(v)];
    for (const auto& [candidate, s] : score) {
      const VertexWeight& cw = cluster_weight[static_cast<size_t>(candidate)];
      if (cw[0] + vw[0] > cluster_cap[0] || cw[1] + vw[1] > cluster_cap[1]) {
        continue;
      }
      if (s > best_score || (s == best_score && candidate < best)) {
        best = candidate;
        best_score = s;
      }
    }
    if (best >= 0) {
      cluster[static_cast<size_t>(v)] = best;
      cluster_weight[static_cast<size_t>(best)][0] += vw[0];
      cluster_weight[static_cast<size_t>(best)][1] += vw[1];
      ++merges;
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<size_t>(n), -1);
  if (merges == 0) {
    return level;  // Caller detects empty mapping => no contraction possible.
  }

  // Compact cluster ids. Cluster representatives are vertices with cluster[v] == v; others
  // point directly at their representative (single-level chains by construction).
  std::vector<VertexId> compact(static_cast<size_t>(n), -1);
  VertexId next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (cluster[static_cast<size_t>(v)] == v) {
      compact[static_cast<size_t>(v)] = next_id++;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    level.fine_to_coarse[static_cast<size_t>(v)] = compact[static_cast<size_t>(find_rep(v))];
    DCP_CHECK_GE(level.fine_to_coarse[static_cast<size_t>(v)], 0);
  }

  // Coarse vertex weights.
  std::vector<VertexWeight> coarse_weights(static_cast<size_t>(next_id),
                                           VertexWeight{0.0, 0.0});
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = level.fine_to_coarse[static_cast<size_t>(v)];
    coarse_weights[static_cast<size_t>(c)][0] += hg.vertex_weight(v)[0];
    coarse_weights[static_cast<size_t>(c)][1] += hg.vertex_weight(v)[1];
  }
  for (const VertexWeight& w : coarse_weights) {
    level.coarse.AddVertex(w[0], w[1]);
  }

  // Coarse edges: remap pins, dedupe within an edge, drop singletons, merge identical edges.
  std::unordered_map<std::vector<VertexId>, double, PinSetHash> merged_edges;
  std::vector<VertexId> pins;
  for (EdgeId e = 0; e < hg.num_edges(); ++e) {
    pins.clear();
    auto [pbegin, pend] = hg.EdgePins(e);
    for (const VertexId* pp = pbegin; pp != pend; ++pp) {
      pins.push_back(level.fine_to_coarse[static_cast<size_t>(*pp)]);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() <= 1) {
      continue;  // Fully internal edge: can never be cut again.
    }
    merged_edges[pins] += hg.edge_weight(e);
  }
  for (auto& [pin_set, weight] : merged_edges) {
    level.coarse.AddEdge(weight, pin_set);
  }
  level.coarse.Finalize();
  return level;
}

}  // namespace dcp
