// Invariant-checking macros. DCP_CHECK* are always on (planning correctness depends on them
// and their cost is negligible next to tensor math); DCP_DCHECK* compile out in NDEBUG builds.
#ifndef DCP_COMMON_CHECK_H_
#define DCP_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace dcp {

// Aborts the process after printing `msg` with source location. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

namespace internal {

// Stream-style message collector so call sites can write DCP_CHECK(x) << "detail " << v;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dcp

#define DCP_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    ::dcp::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define DCP_CHECK_OP(a, op, b) DCP_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define DCP_CHECK_EQ(a, b) DCP_CHECK_OP(a, ==, b)
#define DCP_CHECK_NE(a, b) DCP_CHECK_OP(a, !=, b)
#define DCP_CHECK_LT(a, b) DCP_CHECK_OP(a, <, b)
#define DCP_CHECK_LE(a, b) DCP_CHECK_OP(a, <=, b)
#define DCP_CHECK_GT(a, b) DCP_CHECK_OP(a, >, b)
#define DCP_CHECK_GE(a, b) DCP_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define DCP_DCHECK(cond) DCP_CHECK(true)
#else
#define DCP_DCHECK(cond) DCP_CHECK(cond)
#endif

#endif  // DCP_COMMON_CHECK_H_
