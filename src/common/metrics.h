// The DCP observability layer: a process-global registry of named, labeled
// instruments (counters, gauges, log2-bucketed latency histograms) plus
// per-request phase tracing. The paper's evaluation is a time decomposition
// (fig18/fig22: where do a request's milliseconds go — cache probe, store read,
// coarsen/initial/refine, encode, drain); this module makes the running system
// answer the same question live, per tenant and per serve tier, without putting
// measurable work on the repeat-batch cache-hit path.
//
// Design rules the rest of the tree relies on:
//   - Instrument pointers returned by a Registry are stable for the registry's
//     lifetime: callers resolve once (constructor / function-local static) and
//     then record with plain relaxed atomics — no lock, no lookup, no branch on
//     the hot path beyond one relaxed flag load.
//   - Counters and gauges are ALWAYS live: the legacy stats structs
//     (PlanCacheStats, PlanServerStats, ReplicaSetStats) are thin views over
//     registry counters, so disabling metrics must not make stats lie.
//     SetRecordingEnabled(false) only turns off *latency timing* (the clock
//     reads), which is the only part with hit-path-visible cost; bench_report
//     uses it to price the overhead.
//   - All latency histograms record MICROSECONDS; instrument names carry a
//     `_us` suffix so scrapes are self-describing.
//   - This file is the one blessed home of steady_clock (dcp_lint's `timing`
//     rule): components take timestamps via MonotonicNanos/Micros/Millis so
//     every timing span in the tree is greppable and mockable in one place.
//
// Naming scheme (see README "Observability"): dcp_<component>_<what>[_unit]
// with `_total` for counters, e.g. dcp_engine_cache_hits_total{shard="0"},
// dcp_server_plan_latency_us{tenant="alpha",source="memory_cache"}.
#ifndef DCP_COMMON_METRICS_H_
#define DCP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace dcp {
namespace metrics {

// ---------------------------------------------------------------------------
// Clocks. The one steady_clock call site in src/ outside tests and benches.
// ---------------------------------------------------------------------------

int64_t MonotonicNanos();
int64_t MonotonicMicros();
int64_t MonotonicMillis();

// Latency-timing master switch (counters/gauges are unaffected; see file
// comment). Relaxed atomic; flipping it mid-flight is safe and only affects
// spans started afterwards.
void SetRecordingEnabled(bool enabled);
bool RecordingEnabled();

// Process-unique request/trace id: never 0, unique within a process, seeded
// from the monotonic clock so ids from different processes rarely collide.
uint64_t NextTraceId();

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

struct Label {
  std::string key;
  std::string value;
  friend bool operator==(const Label&, const Label&) = default;
};

// Monotonically increasing value. Add() is a single relaxed fetch_add; callers
// that need a coherent multi-counter snapshot (Engine::cache_stats) get it by
// doing their Add()s under the lock the snapshot holds — atomic storage keeps
// readers tear-free, the caller's lock keeps them coherent.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Instantaneous value (queue depth, outbox bytes). Set/Add are relaxed.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed log2 bucket layout shared by every histogram so snapshots merge by
// element-wise addition. Bucket i holds values v (microseconds) with
// UpperBound(i-1) < v <= UpperBound(i); UpperBound(i) = 2^i us for i in
// [0, kHistogramBuckets-2] (1us .. ~17.9min), last bucket is +Inf.
inline constexpr int kHistogramBuckets = 32;
int64_t HistogramBucketUpperMicros(int bucket);  // Last bucket: INT64_MAX.
int HistogramBucketFor(int64_t micros);

struct HistogramSnapshot {
  std::array<int64_t, kHistogramBuckets> buckets{};
  int64_t sum_micros = 0;

  // Derived from the buckets of THIS snapshot, so `+Inf cumulative == count`
  // holds exactly even when the snapshot raced concurrent Record()s.
  int64_t count() const;
  void Merge(const HistogramSnapshot& other);
  // p in [0, 100]. Linear interpolation within the winning bucket; returns 0
  // for an empty snapshot. Resolution is the log2 bucket width by design.
  double PercentileMicros(double p) const;
};

class Histogram {
 public:
  void Record(int64_t micros) {
    buckets_[HistogramBucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros > 0 ? micros : 0, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<int64_t>, kHistogramBuckets> buckets_{};
  std::atomic<int64_t> sum_micros_{0};
};

// RAII latency span: resolves the enabled flag once at construction and
// becomes a complete no-op when timing is disabled or the histogram is null
// (instruments are optional in components that can run registry-less).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist != nullptr && RecordingEnabled() ? hist : nullptr),
        start_ns_(hist_ != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) {
      hist_->Record((MonotonicNanos() - start_ns_) / 1000);
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  int64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

// Owns instruments keyed by (name, labels); Get* registers on first use and
// returns the same stable pointer forever after (instruments are never
// erased). A registry can carry const labels stamped onto every instrument at
// scrape time (an Engine's per-tenant child registry), and child registries
// attach to the process-global one by weak_ptr so a scrape walks live children
// and merges families without keeping dead components alive.
//
// Lock discipline: mu_ is a leaf lock — held only across map lookups and
// snapshot copies, never while calling out or locking another registry.
class Registry {
 public:
  explicit Registry(std::vector<Label> const_labels = {});
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // `help` is kept from the first registration of `name`.
  Counter* GetCounter(std::string_view name, std::vector<Label> labels = {},
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::vector<Label> labels = {},
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::vector<Label> labels = {},
                          std::string_view help = "");

  // Attach a child whose instruments are included (with its const labels) in
  // this registry's scrapes while the shared_ptr stays alive elsewhere.
  void Attach(const std::shared_ptr<Registry>& child);

  // Prometheus text exposition of this registry plus live attached children.
  // Identical (name, labels) series from different children merge by summing
  // (counters/gauges) or bucket-wise addition (histograms). Families print in
  // name order, series in label order: scrapes are diffable. `name_filter` is
  // a prefix filter on the family name ("" = everything).
  std::string RenderPrometheus(std::string_view name_filter = "") const;

  const std::vector<Label>& const_labels() const { return const_labels_; }

  // The process-global registry: the scrape endpoint (`kMetricsRequest`),
  // `dcpctl serve --metrics-dump-ms`, and free-function instruments all go
  // through here.
  static Registry& Global();
  // Convenience: new Registry with `const_labels`, attached to Global().
  static std::shared_ptr<Registry> NewAttached(std::vector<Label> const_labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;
    std::vector<Label> labels;  // Sorted by key at registration.
    std::string help;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  struct Series;   // Render-time value of one (name, labels) line.
  struct Family;   // Render-time group: name, kind, help, merged series.

  Instrument* GetOrCreate(Kind kind, std::string_view name,
                          std::vector<Label> labels, std::string_view help);
  void Collect(std::vector<Family>* families) const;

  const std::vector<Label> const_labels_;
  mutable Mutex mu_;
  // unique_ptr elements: pointers stay stable as the vector grows.
  std::vector<std::unique_ptr<Instrument>> instruments_ DCP_GUARDED_BY(mu_);
  std::vector<std::weak_ptr<Registry>> children_ DCP_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Per-request phase tracing.
// ---------------------------------------------------------------------------

// The fixed phase vocabulary of a planning request's life, matching the
// paper's time decomposition. Kept dense so a Trace stores spans in a flat
// array and the scrape aggregates per phase with zero allocation.
enum class TracePhase {
  kQueueWait = 0,   // Admission -> worker pickup.
  kCacheProbe,      // Signature hash + sharded LRU lookup.
  kStoreRead,       // PlanStore disk read + decode on a cache miss.
  kPlanCoarsen,     // Partitioner multilevel coarsening.
  kPlanInitial,     // Initial partition of the coarsest level.
  kPlanRefine,      // Uncoarsening + refinement sweeps.
  kPlanOther,       // Rest of PlanBatch (blocks, schedule, compile, validate).
  kEncode,          // Plan record serialization for the wire.
  kWriteDrain,      // Response queued on the outbox -> fully written.
  kPhaseCount,      // Not a phase.
};
inline constexpr int kTracePhaseCount = static_cast<int>(TracePhase::kPhaseCount);
const char* TracePhaseName(TracePhase phase);

// One request's record. Created at admission, carried through the worker and
// the outbox, finalized when the response drains.
struct Trace {
  uint64_t trace_id = 0;
  std::string tenant;
  std::string source;  // Serve tier ("memory_cache", "planned", ...) or error code.
  int64_t start_us = 0;  // MonotonicMicros at admission.
  int64_t total_us = 0;  // Filled at finalization.
  bool ok = true;
  std::array<int64_t, kTracePhaseCount> phase_us{};

  void AddPhase(TracePhase phase, int64_t us) {
    phase_us[static_cast<int>(phase)] += us;
  }
};

// One line: "trace=... tenant=... source=... total_us=... phase=us ...".
// Shared by the slow-request log and `dcpctl` trace printing.
std::string FormatTrace(const Trace& trace);

// Ambient current trace, thread-local. The server worker scopes the request's
// trace around PlanDetailed; Engine / planner / store record phases into
// whatever is current (no-op when nothing is, e.g. direct library use).
class TraceContext {
 public:
  static Trace* Current();

  // RAII: installs `trace` as Current() on this thread, restores on exit.
  class Scope {
   public:
    explicit Scope(Trace* trace);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Trace* previous_;
  };
};

// Adds `us` to `phase` of the ambient trace (if any) AND to the global
// per-phase span counter dcp_phase_us_total{phase=...}, so phase totals are
// scrapeable even for untraced (library-direct) requests.
void RecordPhase(TracePhase phase, int64_t us);
// Same, against an explicit trace (nullable) instead of the ambient one — for
// spans finalized on a thread the trace was never ambient on (write-drain runs
// on the IO loop, not the worker that owned the scope).
void RecordPhase(Trace* trace, TracePhase phase, int64_t us);

// RAII phase span against the ambient trace; no-op when timing is disabled
// AND no trace is current (a live trace always gets its spans).
class ScopedPhase {
 public:
  explicit ScopedPhase(TracePhase phase)
      : phase_(phase),
        active_(TraceContext::Current() != nullptr || RecordingEnabled()),
        start_ns_(active_ ? MonotonicNanos() : 0) {}
  ~ScopedPhase() {
    if (active_) {
      RecordPhase(phase_, (MonotonicNanos() - start_ns_) / 1000);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  TracePhase phase_;
  bool active_;
  int64_t start_ns_;
};

// Bounded ring of recent finalized traces (newest kept, oldest overwritten).
class TraceRing {
 public:
  explicit TraceRing(int capacity = 256);

  void Push(Trace trace);
  // Newest first.
  std::vector<Trace> Snapshot() const;
  int64_t total_pushed() const;

 private:
  mutable Mutex mu_;  // Leaf lock.
  std::vector<Trace> ring_ DCP_GUARDED_BY(mu_);
  int capacity_;
  int64_t next_ DCP_GUARDED_BY(mu_) = 0;
};

}  // namespace metrics
}  // namespace dcp

#endif  // DCP_COMMON_METRICS_H_
