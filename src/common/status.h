// Recoverable error handling for user-input paths (Engine::Plan, dcpctl, dataloader
// configuration). Internal planner invariants keep DCP_CHECK — a violated invariant is a
// bug, not an input error — but anything a caller can get wrong (empty batches,
// non-positive block sizes, malformed cluster shapes) surfaces as a Status instead of an
// abort. Minimal absl-style Status/StatusOr, no external dependencies.
#ifndef DCP_COMMON_STATUS_H_
#define DCP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dcp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  // Persisted or wire bytes failed validation (truncated stream, bad checksum, bad
  // section tag). Always recoverable: callers skip the record and replan.
  kDataLoss,
  // The service cannot take the request right now (overloaded queue, closed
  // connection). Retryable: the request itself was fine.
  kUnavailable,
  // The caller's time budget ran out before the work finished — a socket send/recv
  // timed out, or the server shed a request whose deadline had already expired.
  // Retryable with a fresh deadline; the work itself was fine.
  kDeadlineExceeded,
};

// True when `code` names a StatusCode enumerator — wire decoders range-check inbound
// status bytes through this before casting.
inline bool IsValidStatusCode(int code) {
  return code >= static_cast<int>(StatusCode::kOk) &&
         code <= static_cast<int>(StatusCode::kDeadlineExceeded);
}

const char* StatusCodeName(StatusCode code);

// [[nodiscard]]: a silently dropped Status is a swallowed error (the call sites the
// attribute flushed were exactly the ones that could lose a failed store write or a
// torn-frame report). Call sites that genuinely don't care cast to void with a reason:
//   (void)store_->Put(...);  // best-effort write-through; failure degrades to replan
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "INVALID_ARGUMENT: seqlens must be non-empty" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a value or a non-OK Status. Accessing value() on an error aborts with the
// status message, so call sites that cannot recover may use it as a checked unwrap.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    DCP_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DCP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DCP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DCP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dcp

#define DCP_RETURN_IF_ERROR(expr)       \
  do {                                  \
    ::dcp::Status _dcp_status = (expr); \
    if (!_dcp_status.ok()) {            \
      return _dcp_status;               \
    }                                   \
  } while (false)

#endif  // DCP_COMMON_STATUS_H_
