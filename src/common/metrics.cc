#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

namespace dcp {
namespace metrics {
namespace {

std::atomic<bool> g_recording_enabled{true};

// SplitMix64 finalizer: full-period mixing of a counter into well-spread ids.
// Not a simulation RNG (those go through common/rng); ids only need to be
// unique and non-guessably clumped, not statistically deterministic.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Merged (const + instrument) labels rendered as `k="v",k2="v2"`, values
// escaped per the Prometheus text format. Instrument labels win on key
// collision; keys print in sorted order so scrapes are diffable.
void AppendEscaped(std::string* out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

std::string RenderLabelString(const std::vector<Label>& const_labels,
                              const std::vector<Label>& labels) {
  std::map<std::string, const std::string*> merged;
  for (const Label& label : const_labels) merged[label.key] = &label.value;
  for (const Label& label : labels) merged[label.key] = &label.value;
  std::string out;
  for (const auto& [key, value] : merged) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    AppendEscaped(&out, *value);
    out += '"';
  }
  return out;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

}  // namespace

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

int64_t MonotonicMillis() { return MonotonicNanos() / 1000000; }

void SetRecordingEnabled(bool enabled) {
  g_recording_enabled.store(enabled, std::memory_order_relaxed);
}

bool RecordingEnabled() {
  return g_recording_enabled.load(std::memory_order_relaxed);
}

uint64_t NextTraceId() {
  static const uint64_t process_seed =
      SplitMix64(static_cast<uint64_t>(MonotonicNanos()));
  static std::atomic<uint64_t> sequence{0};
  const uint64_t id = SplitMix64(
      process_seed ^ sequence.fetch_add(0x9E3779B97F4A7C15ull,
                                        std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

int64_t HistogramBucketUpperMicros(int bucket) {
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return int64_t{1} << bucket;
}

int HistogramBucketFor(int64_t micros) {
  if (micros <= 1) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(micros - 1));
  return width >= kHistogramBuckets - 1 ? kHistogramBuckets - 1 : width;
}

int64_t HistogramSnapshot::count() const {
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  return total;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
  sum_micros += other.sum_micros;
}

double HistogramSnapshot::PercentileMicros(double p) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  double target = (p / 100.0) * static_cast<double>(n);
  if (target < 1.0) target = 1.0;
  if (target > static_cast<double>(n)) target = static_cast<double>(n);
  int64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const int64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower =
          i == 0 ? 0.0
                 : static_cast<double>(HistogramBucketUpperMicros(i - 1));
      if (i == kHistogramBuckets - 1) {
        return lower;  // Open-ended bucket: report its lower edge.
      }
      const double upper = static_cast<double>(HistogramBucketUpperMicros(i));
      const double within = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(HistogramBucketUpperMicros(kHistogramBuckets - 2));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  return snap;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct Registry::Series {
  std::string labels;  // Pre-rendered, const labels already merged in.
  int64_t value = 0;
  HistogramSnapshot hist;
};

struct Registry::Family {
  std::string name;
  Kind kind = Kind::kCounter;
  std::string help;
  std::vector<Series> series;
};

Registry::Registry(std::vector<Label> const_labels)
    : const_labels_(std::move(const_labels)) {}

Registry::Instrument* Registry::GetOrCreate(Kind kind, std::string_view name,
                                            std::vector<Label> labels,
                                            std::string_view help) {
  std::stable_sort(labels.begin(), labels.end(),
                   [](const Label& a, const Label& b) { return a.key < b.key; });
  MutexLock lock(mu_);
  // Linear probe over a flat vector: registration is rare (construction time
  // or first sight of a tenant/source), recording never comes back here.
  for (const auto& instrument : instruments_) {
    if (instrument->kind == kind && instrument->name == name &&
        instrument->labels == labels) {
      return instrument.get();
    }
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = kind;
  instrument->name = std::string(name);
  instrument->labels = std::move(labels);
  instrument->help = std::string(help);
  instruments_.push_back(std::move(instrument));
  return instruments_.back().get();
}

Counter* Registry::GetCounter(std::string_view name, std::vector<Label> labels,
                              std::string_view help) {
  return &GetOrCreate(Kind::kCounter, name, std::move(labels), help)->counter;
}

Gauge* Registry::GetGauge(std::string_view name, std::vector<Label> labels,
                          std::string_view help) {
  return &GetOrCreate(Kind::kGauge, name, std::move(labels), help)->gauge;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<Label> labels,
                                  std::string_view help) {
  return &GetOrCreate(Kind::kHistogram, name, std::move(labels), help)
              ->histogram;
}

void Registry::Attach(const std::shared_ptr<Registry>& child) {
  MutexLock lock(mu_);
  std::erase_if(children_,
                [](const std::weak_ptr<Registry>& w) { return w.expired(); });
  children_.push_back(child);
}

void Registry::Collect(std::vector<Family>* families) const {
  // Copy stable pointers out under the leaf lock, read atomics after. Children
  // are collected after mu_ is released so no two registry locks ever nest.
  std::vector<Instrument*> instruments;
  std::vector<std::shared_ptr<Registry>> children;
  {
    MutexLock lock(mu_);
    instruments.reserve(instruments_.size());
    for (const auto& instrument : instruments_) {
      instruments.push_back(instrument.get());
    }
    for (const auto& weak : children_) {
      if (std::shared_ptr<Registry> child = weak.lock()) {
        children.push_back(std::move(child));
      }
    }
  }
  for (Instrument* instrument : instruments) {
    Family family;
    family.name = instrument->name;
    family.kind = instrument->kind;
    family.help = instrument->help;
    Series series;
    series.labels = RenderLabelString(const_labels_, instrument->labels);
    switch (instrument->kind) {
      case Kind::kCounter: series.value = instrument->counter.value(); break;
      case Kind::kGauge: series.value = instrument->gauge.value(); break;
      case Kind::kHistogram: series.hist = instrument->histogram.Snapshot(); break;
    }
    family.series.push_back(std::move(series));
    families->push_back(std::move(family));
  }
  for (const auto& child : children) {
    child->Collect(families);
  }
}

std::string Registry::RenderPrometheus(std::string_view name_filter) const {
  std::vector<Family> raw;
  Collect(&raw);

  // Merge by family name, then by label string within the family. Ordered maps
  // keep the exposition deterministic for diffing and for the validator.
  std::map<std::string, Family> families;
  for (Family& family : raw) {
    if (!name_filter.empty() &&
        family.name.compare(0, name_filter.size(), name_filter) != 0) {
      continue;
    }
    auto [it, inserted] = families.try_emplace(family.name, Family{});
    Family& merged = it->second;
    if (inserted) {
      merged.name = family.name;
      merged.kind = family.kind;
      merged.help = family.help;
    } else if (merged.kind != family.kind) {
      continue;  // Name reused with a different kind; first registration wins.
    }
    for (Series& series : family.series) {
      auto same = std::find_if(
          merged.series.begin(), merged.series.end(),
          [&](const Series& s) { return s.labels == series.labels; });
      if (same == merged.series.end()) {
        merged.series.push_back(std::move(series));
      } else if (merged.kind == Kind::kHistogram) {
        same->hist.Merge(series.hist);
      } else {
        same->value += series.value;
      }
    }
  }

  std::string out;
  for (auto& [name, family] : families) {
    std::sort(family.series.begin(), family.series.end(),
              [](const Series& a, const Series& b) { return a.labels < b.labels; });
    out += "# HELP " + name + " " +
           (family.help.empty() ? std::string("(no help)") : family.help) + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const Series& series : family.series) {
      if (family.kind == Kind::kHistogram) {
        int64_t cumulative = 0;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          cumulative += series.hist.buckets[i];
          out += name + "_bucket{" + series.labels;
          if (!series.labels.empty()) out += ',';
          out += "le=\"";
          if (i == kHistogramBuckets - 1) {
            out += "+Inf";
          } else {
            AppendInt(&out, HistogramBucketUpperMicros(i));
          }
          out += "\"} ";
          AppendInt(&out, cumulative);
          out += '\n';
        }
        const std::string suffix =
            series.labels.empty() ? "" : "{" + series.labels + "}";
        out += name + "_sum" + suffix + " ";
        AppendInt(&out, series.hist.sum_micros);
        out += '\n';
        out += name + "_count" + suffix + " ";
        AppendInt(&out, series.hist.count());
        out += '\n';
      } else {
        out += name;
        if (!series.labels.empty()) out += "{" + series.labels + "}";
        out += ' ';
        AppendInt(&out, series.value);
        out += '\n';
      }
    }
  }
  return out;
}

Registry& Registry::Global() {
  // Intentionally leaked: instruments resolved into static pointers anywhere
  // in the process must outlive every static destructor.
  static Registry* global = new Registry();
  return *global;
}

std::shared_ptr<Registry> Registry::NewAttached(std::vector<Label> const_labels) {
  auto child = std::make_shared<Registry>(std::move(const_labels));
  Global().Attach(child);
  return child;
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kQueueWait: return "queue_wait";
    case TracePhase::kCacheProbe: return "cache_probe";
    case TracePhase::kStoreRead: return "store_read";
    case TracePhase::kPlanCoarsen: return "plan_coarsen";
    case TracePhase::kPlanInitial: return "plan_initial";
    case TracePhase::kPlanRefine: return "plan_refine";
    case TracePhase::kPlanOther: return "plan_other";
    case TracePhase::kEncode: return "encode";
    case TracePhase::kWriteDrain: return "write_drain";
    case TracePhase::kPhaseCount: break;
  }
  return "unknown";
}

std::string FormatTrace(const Trace& trace) {
  char head[128];
  std::snprintf(head, sizeof(head), "trace=%016llx",
                static_cast<unsigned long long>(trace.trace_id));
  std::string out(head);
  out += " tenant=" + (trace.tenant.empty() ? std::string("-") : trace.tenant);
  out += " source=" + (trace.source.empty() ? std::string("-") : trace.source);
  out += trace.ok ? " ok=1" : " ok=0";
  out += " total_us=";
  AppendInt(&out, trace.total_us);
  for (int i = 0; i < kTracePhaseCount; ++i) {
    if (trace.phase_us[i] == 0) continue;
    out += ' ';
    out += TracePhaseName(static_cast<TracePhase>(i));
    out += "_us=";
    AppendInt(&out, trace.phase_us[i]);
  }
  return out;
}

namespace {
thread_local Trace* g_current_trace = nullptr;
}  // namespace

Trace* TraceContext::Current() { return g_current_trace; }

TraceContext::Scope::Scope(Trace* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

TraceContext::Scope::~Scope() { g_current_trace = previous_; }

void RecordPhase(TracePhase phase, int64_t us) {
  RecordPhase(TraceContext::Current(), phase, us);
}

void RecordPhase(Trace* trace, TracePhase phase, int64_t us) {
  if (phase >= TracePhase::kPhaseCount || us < 0) return;
  if (trace != nullptr) {
    trace->AddPhase(phase, us);
  }
  static std::array<Counter*, kTracePhaseCount>* const phase_counters = [] {
    auto* counters = new std::array<Counter*, kTracePhaseCount>();
    for (int i = 0; i < kTracePhaseCount; ++i) {
      (*counters)[i] = Registry::Global().GetCounter(
          "dcp_phase_us_total",
          {{"phase", TracePhaseName(static_cast<TracePhase>(i))}},
          "Cumulative request phase span time in microseconds");
    }
    return counters;
  }();
  (*phase_counters)[static_cast<int>(phase)]->Add(us);
}

TraceRing::TraceRing(int capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

void TraceRing::Push(Trace trace) {
  MutexLock lock(mu_);
  if (ring_.size() < static_cast<size_t>(capacity_)) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[static_cast<size_t>(next_ % capacity_)] = std::move(trace);
  }
  ++next_;
}

std::vector<Trace> TraceRing::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<Trace> out;
  out.reserve(ring_.size());
  // Newest first: walk backwards from the last written slot.
  const int64_t n = static_cast<int64_t>(ring_.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t slot = (next_ - 1 - i) % capacity_;
    out.push_back(ring_[static_cast<size_t>((slot + capacity_) % capacity_)]);
  }
  return out;
}

int64_t TraceRing::total_pushed() const {
  MutexLock lock(mu_);
  return next_;
}

}  // namespace metrics
}  // namespace dcp
