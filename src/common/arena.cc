#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace dcp {

void* Arena::Allocate(size_t bytes, size_t align) {
  DCP_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) {
    bytes = 1;  // Distinct non-null pointers for zero-length arrays.
  }
  if (!blocks_.empty()) {
    Block& block = blocks_.back();
    const size_t aligned = (block.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      block.used = aligned + bytes;
      bytes_allocated_ += bytes;
      return block.data.get() + aligned;
    }
  }
  // Geometric growth, but never smaller than the request: an exact-size first request
  // (the common case — one seqlens array per decoded plan request) fits in one block.
  size_t block_size = blocks_.empty() ? kMinBlockBytes : blocks_.back().size * 2;
  block_size = std::max(block_size, bytes + align);
  Block block;
  block.data = std::make_unique<char[]>(block_size);
  block.size = block_size;
  const size_t base = reinterpret_cast<uintptr_t>(block.data.get());
  const size_t offset = ((base + align - 1) & ~(align - 1)) - base;
  block.used = offset + bytes;
  bytes_allocated_ += bytes;
  void* out = block.data.get() + offset;
  blocks_.push_back(std::move(block));
  return out;
}

void Arena::Reset() {
  blocks_.clear();
  bytes_allocated_ = 0;
}

}  // namespace dcp
