// Clang Thread Safety Analysis for the DCP concurrency contracts, plus the annotated
// dcp::Mutex / dcp::MutexLock / dcp::CondVar wrappers every locked class in the repo
// uses. Under clang (`cmake --preset clang-strict`, -Wthread-safety -Werror) the
// annotations are a static proof obligation: a GUARDED_BY field touched without its
// mutex, a REQUIRES function called unlocked, or a lock leaked out of scope is a
// compile error. Under GCC the macros expand to nothing and the wrappers are
// zero-overhead shims over std::mutex / std::condition_variable, so the annotated tree
// builds identically everywhere and the proof runs wherever clang is available.
//
// Annotation style (mirrors the Clang TSA reference and abseil's usage):
//   - every mutex-protected field:       Type field_ DCP_GUARDED_BY(mu_);
//   - helpers called with the lock held: void F() DCP_REQUIRES(mu_);
//   - public APIs that take the lock:    void G() DCP_EXCLUDES(mu_);  // self-deadlock
//   - raw Lock/Unlock pairs:             DCP_ACQUIRE(mu_) / DCP_RELEASE(mu_)
// Functions whose locking pattern is correct but beyond the analysis (e.g. acquiring
// every shard lock of a dynamically-sized vector for a coherent snapshot) carry
// DCP_NO_THREAD_SAFETY_ANALYSIS with a comment saying why.
#ifndef DCP_COMMON_THREAD_ANNOTATIONS_H_
#define DCP_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DCP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DCP_THREAD_ANNOTATION_ATTRIBUTE(x)  // GCC/MSVC: no analysis, no attribute.
#endif

#define DCP_CAPABILITY(x) DCP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define DCP_SCOPED_CAPABILITY DCP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define DCP_GUARDED_BY(x) DCP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define DCP_PT_GUARDED_BY(x) DCP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define DCP_ACQUIRED_BEFORE(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define DCP_ACQUIRED_AFTER(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define DCP_REQUIRES(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define DCP_ACQUIRE(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define DCP_RELEASE(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define DCP_TRY_ACQUIRE(...) \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define DCP_EXCLUDES(...) DCP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define DCP_RETURN_CAPABILITY(x) DCP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define DCP_NO_THREAD_SAFETY_ANALYSIS \
  DCP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace dcp {

// std::mutex with a capability annotation, so fields can be declared
// DCP_GUARDED_BY(mu_) and the analysis can prove every access holds it.
class DCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DCP_ACQUIRE() { mu_.lock(); }
  void Unlock() DCP_RELEASE() { mu_.unlock(); }
  bool TryLock() DCP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The underlying std::mutex, for CondVar and for snapshot paths that build
  // std::unique_lock vectors over dynamically many shards.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock over dcp::Mutex (the std::lock_guard of this codebase). Also supports the
// unlock/relock dance condition-wait loops and lock-dropping hot paths need; the
// destructor releases only if still held.
class DCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DCP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DCP_RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() DCP_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() DCP_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

// Condition variable paired with dcp::Mutex. Wait requires the mutex held (and the
// analysis checks callers); predicate loops are written inline at the call site —
//   while (!cond) cv_.Wait(mu_);
// — rather than as predicate lambdas, because the analysis does not propagate the
// held-capability fact into a lambda body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DCP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still holds mu; don't double-unlock.
  }

  // Returns false on timeout (the mutex is re-held either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      DCP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dcp

#endif  // DCP_COMMON_THREAD_ANNOTATIONS_H_
