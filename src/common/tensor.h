// A minimal dense fp32 tensor for the numeric executor and trainer. Row-major, owning,
// up to 4 dimensions. This is intentionally simple: the executor addresses data through
// block tables, so no view/stride machinery is required.
#ifndef DCP_COMMON_TENSOR_H_
#define DCP_COMMON_TENSOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dcp {

class Rng;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // I.i.d. uniform in [lo, hi).
  static Tensor Random(std::vector<int64_t> shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  void Fill(float value);
  // this += other (shapes must match).
  void Add(const Tensor& other);
  // this *= s.
  void Scale(float s);

  // Largest absolute element difference; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);
  // Relative L2 error ||a-b|| / max(||b||, eps).
  static double RelativeL2(const Tensor& a, const Tensor& b);

  std::string ShapeString() const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace dcp

#endif  // DCP_COMMON_TENSOR_H_
