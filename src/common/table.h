// Markdown-style table printer so every bench binary emits the same row/series layout the
// paper's figures report.
#ifndef DCP_COMMON_TABLE_H_
#define DCP_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dcp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcp

#endif  // DCP_COMMON_TABLE_H_
