// Fixed-size worker pool used by the DCP dataloader to run look-ahead planning in parallel
// with "model execution" (paper §6.1). Tasks are plain std::function jobs; results are
// delivered through std::future.
#ifndef DCP_COMMON_THREAD_POOL_H_
#define DCP_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dcp {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job; the returned future becomes ready when it finishes.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      jobs_.emplace_back([task]() { (*task)(); });
    }
    cv_.NotifyOne();
    return result;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs every task, returning once all have finished. The calling thread participates:
  // it claims and executes tasks alongside the pool workers, so this is safe to call
  // from inside a pool task (nested invocations degrade to inline execution instead of
  // deadlocking on a saturated pool) and always makes progress even with zero idle
  // workers. Tasks must be independent; no ordering between them is guaranteed, so any
  // determinism requirement belongs in the tasks (e.g. pre-forked RNG streams and
  // dedicated result slots) rather than in their interleaving.
  void ParallelInvoke(std::vector<std::function<void()>> tasks);

  // Runs fn(begin, end, chunk_index) over [0, n) split into fixed-size chunks of `grain`
  // elements. Chunk boundaries depend only on (n, grain) — never on the pool size — so a
  // computation whose chunks are independent produces bit-identical results for any
  // thread count. Small inputs (a single chunk) run inline without touching the pool.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> jobs_ DCP_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ DCP_GUARDED_BY(mutex_) = false;
};

// Process-wide pool shared by the planner's parallel phases (partitioner portfolio,
// block-size search, coarsening). Sized to the hardware concurrency; created on first
// use. All parallel planner phases are bit-deterministic by construction, so swapping
// the pool only changes wall clock, never results.
ThreadPool& GlobalThreadPool();

// Replaces the pool returned by GlobalThreadPool() for the lifetime of the override
// (process-global; overrides do not nest across concurrent threads — establish one from
// a single thread at a time). Determinism tests use this to run the identical workload
// on pools of different sizes and assert bit-identical output.
class ScopedThreadPoolOverride {
 public:
  explicit ScopedThreadPoolOverride(ThreadPool* pool);
  ~ScopedThreadPoolOverride();

  ScopedThreadPoolOverride(const ScopedThreadPoolOverride&) = delete;
  ScopedThreadPoolOverride& operator=(const ScopedThreadPoolOverride&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace dcp

#endif  // DCP_COMMON_THREAD_POOL_H_
