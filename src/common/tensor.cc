#include "common/tensor.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace dcp {

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  int64_t n = 1;
  for (int64_t d : shape_) {
    DCP_CHECK_GE(d, 0);
    n *= d;
  }
  data_.assign(static_cast<size_t>(n), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Random(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.NextUniform(lo, hi));
  }
  return t;
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  DCP_CHECK_EQ(static_cast<int>(idx.size()), ndim());
  int64_t flat = 0;
  int i = 0;
  for (int64_t v : idx) {
    DCP_DCHECK(v >= 0 && v < shape_[static_cast<size_t>(i)]);
    flat = flat * shape_[static_cast<size_t>(i)] + v;
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

void Tensor::Fill(float value) {
  for (float& v : data_) {
    v = value;
  }
}

void Tensor::Add(const Tensor& other) {
  DCP_CHECK_EQ(numel(), other.numel());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::Scale(float s) {
  for (float& v : data_) {
    v *= s;
  }
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  DCP_CHECK_EQ(a.numel(), b.numel());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

double Tensor::RelativeL2(const Tensor& a, const Tensor& b) {
  DCP_CHECK_EQ(a.numel(), b.numel());
  double diff2 = 0.0;
  double ref2 = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - static_cast<double>(b.data()[i]);
    diff2 += d * d;
    ref2 += static_cast<double>(b.data()[i]) * static_cast<double>(b.data()[i]);
  }
  return std::sqrt(diff2) / std::max(std::sqrt(ref2), 1e-12);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    out << (i == 0 ? "" : ", ") << shape_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace dcp
