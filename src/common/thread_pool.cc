#include "common/thread_pool.h"

#include "common/check.h"

namespace dcp {

ThreadPool::ThreadPool(int num_threads) {
  DCP_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        return;  // stopping_ and drained.
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

}  // namespace dcp
