#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"

namespace dcp {

ThreadPool::ThreadPool(int num_threads) {
  DCP_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelInvoke(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  struct InvokeState {
    std::vector<std::function<void()>>* tasks;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mutex;
    CondVar finished;
  };
  auto state = std::make_shared<InvokeState>();
  state->tasks = &tasks;
  const size_t total = tasks.size();
  auto drain = [state, total]() {
    while (true) {
      const size_t i = state->next.fetch_add(1);
      if (i >= total) {
        return;
      }
      (*state->tasks)[i]();
      if (state->done.fetch_add(1) + 1 == total) {
        MutexLock lock(state->mutex);
        state->finished.NotifyAll();
      }
    }
  };
  // Helpers are hints: if the pool is saturated (or this is a nested invocation from a
  // pool worker) they may start late or never, and the caller simply drains everything.
  const size_t helpers = std::min(total - 1, static_cast<size_t>(num_threads()));
  for (size_t h = 0; h < helpers; ++h) {
    Submit(drain);
  }
  drain();
  MutexLock lock(state->mutex);
  while (state->done.load() != total) {
    state->finished.Wait(state->mutex);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && jobs_.empty()) {
        cv_.Wait(mutex_);
      }
      if (jobs_.empty()) {
        return;  // stopping_ and drained.
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  DCP_CHECK_GT(grain, 0u);
  const size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) {
    fn(0, n, 0);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * grain;
    const size_t end = std::min(n, begin + grain);
    tasks.emplace_back([&fn, begin, end, c]() { fn(begin, end, c); });
  }
  ParallelInvoke(std::move(tasks));
}

namespace {
std::atomic<ThreadPool*> g_pool_override{nullptr};
}  // namespace

ThreadPool& GlobalThreadPool() {
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  if (override_pool != nullptr) {
    return *override_pool;
  }
  static ThreadPool pool(
      std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

ScopedThreadPoolOverride::ScopedThreadPoolOverride(ThreadPool* pool)
    : previous_(g_pool_override.exchange(pool, std::memory_order_acq_rel)) {}

ScopedThreadPoolOverride::~ScopedThreadPoolOverride() {
  g_pool_override.store(previous_, std::memory_order_release);
}

}  // namespace dcp
