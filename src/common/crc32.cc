#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace dcp {
namespace {

// Slicing-by-8: eight derived tables let the loop fold 8 input bytes per iteration
// (one unaligned 64-bit load + eight table lookups) instead of one — ~5x faster than
// the classic byte-at-a-time loop. This is the hot inner loop of every plan-store
// record validation and every planning-service frame, where records run to hundreds of
// KB. The computed CRC is identical to the byte-wise definition (same polynomial,
// same reflection); the wide kernel additionally assumes little-endian layout and
// falls back to the byte loop elsewhere.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  static const std::array<std::array<uint32_t, 256>, 8> tables = MakeTables();
  const auto& t = tables;
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      uint64_t chunk;
      std::memcpy(&chunk, bytes, 8);
      const uint32_t lo = crc ^ static_cast<uint32_t>(chunk);
      const uint32_t hi = static_cast<uint32_t>(chunk >> 32);
      crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
            t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
            t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dcp
