#include "common/crc32.h"

#include <array>

namespace dcp {
namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = MakeTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dcp
