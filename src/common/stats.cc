#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dcp {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int num_bins) : lo_(lo), hi_(hi) {
  DCP_CHECK_GT(num_bins, 0);
  DCP_CHECK_LT(lo, hi);
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

void Histogram::Add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int bin = static_cast<int>(std::floor((value - lo_) / width));
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(int bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * bin;
}

double Histogram::bin_hi(int bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (bin + 1);
}

std::string Histogram::ToAscii(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (int b = 0; b < num_bins(); ++b) {
    const int bar = static_cast<int>(
        static_cast<double>(bin_count(b)) / static_cast<double>(peak) * max_width);
    out << "[" << static_cast<int64_t>(bin_lo(b)) << ", " << static_cast<int64_t>(bin_hi(b))
        << ") " << std::string(static_cast<size_t>(bar), '#') << " " << bin_count(b) << "\n";
  }
  return out.str();
}

double Percentile(std::vector<double> values, double p) {
  DCP_CHECK(!values.empty());
  DCP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dcp
