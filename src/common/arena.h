// A bump allocator for request-scoped decode scratch: the planning service decodes
// each inbound plan request into views over the wire payload plus arena-backed arrays,
// so one deserialization costs one arena block instead of a per-field allocation storm.
// Blocks grow geometrically; nothing is freed until the arena is destroyed or Reset.
// Not thread-safe — an arena belongs to exactly one request.
#ifndef DCP_COMMON_ARENA_H_
#define DCP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dcp {

class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two). Never fails:
  // a block large enough for the request is allocated when the current one is full.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  // Typed array of `n` default-constructible trivials. The service decoder sizes this
  // exactly from the wire count, so a whole seqlens array is one block.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Drops every block. Outstanding pointers become invalid.
  void Reset();

  // Observability for tests that assert allocation behavior (e.g. "decoding one plan
  // request touches the allocator exactly once").
  size_t block_count() const { return blocks_.size(); }
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kMinBlockBytes = 256;

  std::vector<Block> blocks_;
  size_t bytes_allocated_ = 0;
};

}  // namespace dcp

#endif  // DCP_COMMON_ARENA_H_
