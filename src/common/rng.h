// Deterministic random number generation. All randomized components (datasets, partitioner
// tie-breaking, trainers) take an explicit Rng so every experiment is reproducible from a seed.
#ifndef DCP_COMMON_RNG_H_
#define DCP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dcp {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and identical across platforms
// (unlike std::mt19937_64 distributions, whose results vary across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);
  // Standard normal via Box-Muller.
  double NextGaussian();
  // Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);
  // Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Derives an independent child generator (for parallel workers).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dcp

#endif  // DCP_COMMON_RNG_H_
