// Shared scalar types and small helpers used across all DCP subsystems.
#ifndef DCP_COMMON_TYPES_H_
#define DCP_COMMON_TYPES_H_

#include <cstdint>

namespace dcp {

using DeviceId = int32_t;  // Global device rank in [0, num_devices).
using NodeId = int32_t;    // Machine index in [0, num_nodes).
using SeqId = int32_t;     // Sequence index within a batch.
using GroupId = int32_t;   // KV-head-group index.
using ChunkId = int32_t;   // Token-chunk index within a sequence.
using BlockId = int32_t;   // Index into a per-batch block table.
using Flops = double;      // Floating point operation count.
using Bytes = int64_t;     // Data size in bytes.

inline constexpr BlockId kInvalidBlock = -1;
inline constexpr DeviceId kInvalidDevice = -1;

// Integer ceil-division for non-negative values.
template <typename T>
constexpr T CeilDiv(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace dcp

#endif  // DCP_COMMON_TYPES_H_
