// Summary statistics and fixed-width histograms used by datasets, benches and the simulator.
#ifndef DCP_COMMON_STATS_H_
#define DCP_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcp {

// Streaming summary of a scalar series (Welford for mean/variance, plus min/max/sum).
class RunningStats {
 public:
  void Add(double value);
  int64_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double value);
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t bin_count(int bin) const { return counts_[static_cast<size_t>(bin)]; }
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;
  int64_t total() const { return total_; }

  // Multi-line ASCII rendering (one row per bin) for bench output.
  std::string ToAscii(int max_width = 60) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

// Exact percentile of a sample (copies and sorts; fine for bench-sized data).
double Percentile(std::vector<double> values, double p);

}  // namespace dcp

#endif  // DCP_COMMON_STATS_H_
