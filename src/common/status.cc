#include "common/status.h"

namespace dcp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dcp
