// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), used to checksum persisted plan records
// so a torn write or bit rot is detected before any bytes reach the plan deserializer.
#ifndef DCP_COMMON_CRC32_H_
#define DCP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dcp {

// Incremental update: pass the previous return value as `crc` to extend a running
// checksum (start from 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace dcp

#endif  // DCP_COMMON_CRC32_H_
