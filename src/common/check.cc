#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace dcp {

void CheckFailed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "DCP_CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dcp
