#include "common/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace dcp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DCP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = emit_row(headers_);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) {
    out += emit_row(row);
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dcp
