// RLHF post-training scenario (paper §2.4, Fig. 6d/7): each prompt is shared by several
// candidate answers, expressed as a shared-question attention mask. Static context
// parallelism circulates every KV block through every device; DCP's mask-aware block
// generation drops the masked-out tiles and its placement avoids the redundant transfers.
//
//   ./examples/rlhf_shared_question
#include <cstdio>

#include "baselines/static_planner.h"
#include "core/api.h"
#include "runtime/reference_attention.h"
#include "runtime/sim_engine.h"

using namespace dcp;

int main() {
  ClusterSpec cluster = ClusterSpec::MicroBenchTestbed();  // 4 nodes x 8 devices.
  EngineOptions engine_options;
  engine_options.planner.block_size = 1024;
  engine_options.planner.num_groups = 2;
  engine_options.planner.heads_per_group = 4;
  engine_options.planner.head_dim = 128;
  const PlannerOptions& options = engine_options.planner;
  Engine engine(cluster, engine_options);

  // A PPO-style batch: prompts with 4 sampled answers each. The mask function (paper
  // Listing 2, mask_fn) is the SharedQuestion spec: each answer attends the prompt and
  // itself, never its siblings.
  const MaskSpec mask_spec = MaskSpec::SharedQuestion(/*num_answers=*/4,
                                                      /*answer_fraction=*/0.2);
  const std::vector<int64_t> seqlens = {40960, 24576, 16384, 32768, 16384};

  std::vector<SequenceMask> masks = BuildBatchMasks(mask_spec, seqlens);
  double sparsity = 0.0;
  for (const SequenceMask& mask : masks) {
    sparsity += mask.SparsityVsCausal() / static_cast<double>(masks.size());
  }
  std::printf("batch: %zu prompts, mask sparsity vs causal: %.2f\n\n", seqlens.size(),
              sparsity);

  // --- Plan with DCP (through the session engine) and the static TE-style baseline. ---
  const PlanHandle dcp_handle = engine.Plan(seqlens, mask_spec).value();
  const BatchPlan& dcp = dcp_handle->plan;
  BaselineResult te = PlanBaseline(BaselineKind::kTransformerEngine, seqlens, mask_spec,
                                   cluster, options);

  SimEngine sim{CostModel(cluster)};
  const SimResult dcp_fw = sim.Simulate(dcp, false);
  const SimResult te_fw = sim.Simulate(te.plan, false);
  std::printf("                      %12s %12s\n", "static CP", "DCP");
  std::printf("total comm (MiB)      %12.1f %12.1f\n",
              static_cast<double>(te.plan.stats.total_comm_bytes) / (1 << 20),
              static_cast<double>(dcp.stats.total_comm_bytes) / (1 << 20));
  std::printf("inter-node comm (MiB) %12.1f %12.1f\n",
              static_cast<double>(te.plan.stats.inter_node_comm_bytes) / (1 << 20),
              static_cast<double>(dcp.stats.inter_node_comm_bytes) / (1 << 20));
  std::printf("attention fw (ms)     %12.2f %12.2f\n", te_fw.makespan * 1e3,
              dcp_fw.makespan * 1e3);
  std::printf("exposed comm (ms)     %12.2f %12.2f\n", te_fw.MeanExposedComm() * 1e3,
              dcp_fw.MeanExposedComm() * 1e3);

  // --- Numeric check on a scaled-down copy of the same scenario. ---
  ClusterSpec small;
  small.num_nodes = 2;
  small.devices_per_node = 2;
  EngineOptions small_engine_options = engine_options;
  small_engine_options.planner.block_size = 32;
  small_engine_options.planner.head_dim = 16;
  const std::vector<int64_t> small_lens = {320, 192, 256};
  Engine small_engine(small, small_engine_options);
  const PlanHandle small_plan = small_engine.Plan(small_lens, mask_spec).value();
  DcpExecutor executor;
  executor.Prepare(small_plan);
  Rng rng(3);
  std::vector<SeqTensors> inputs;
  for (int64_t len : small_lens) {
    inputs.push_back(
        SeqTensors::Random(8, 2, len, small_engine_options.planner.head_dim, rng));
  }
  std::vector<Tensor> outputs = DcpAttention::Forward(executor, inputs);
  float worst = 0.0f;
  for (size_t s = 0; s < inputs.size(); ++s) {
    worst = std::max(worst,
                     Tensor::MaxAbsDiff(outputs[s], ReferenceAttentionForward(
                                                        inputs[s], small_plan->masks[s])));
  }
  std::printf("\nnumeric check (scaled-down): max |DCP - reference| = %.2e %s\n", worst,
              worst < 1e-4f ? "(OK)" : "(MISMATCH!)");
  return 0;
}
