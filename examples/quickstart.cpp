// Quickstart: the paper's Listing-2 workflow end to end, on the session Engine API.
//
// Builds a small variable-length batch, lets the DCP data loader plan it (blocks ->
// hypergraph placement -> division schedule -> instruction streams) through a shared
// dcp::Engine, executes the plan numerically across 4 simulated devices, and checks the
// result against a single-device reference attention. Repeated batch shapes come back as
// plan-cache hits, and the executor reuses its device buffers whenever consecutive
// iterations share a plan signature.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/api.h"
#include "runtime/reference_attention.h"

using namespace dcp;

int main() {
  // --- Cluster: 2 nodes x 2 devices. ---
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  cluster.devices_per_node = 2;

  // --- Dataset + batching: variable-length sequences, 4096-token global batches. ---
  DatasetConfig dataset;
  dataset.kind = DatasetKind::kLongDataCollections;
  dataset.max_seq_len = 2048;
  dataset.min_seq_len = 128;
  BatchingConfig batching;
  batching.token_budget = 4096;

  // --- The session engine owns the attention spec, planner knobs, and plan cache. ---
  EngineOptions engine_options;
  engine_options.planner.block_size = 256;
  engine_options.planner.num_groups = 2;      // GQA: 2 KV groups...
  engine_options.planner.heads_per_group = 2; // ...serving 4 query heads.
  engine_options.planner.head_dim = 32;
  auto engine = std::make_shared<Engine>(cluster, engine_options);

  // The data loader plans look-ahead iterations on the engine's pool (paper §6.1).
  DcpDataLoader loader(BatchStream{LengthSampler(dataset), batching},
                       MaskSpec::Causal(), engine, /*lookahead=*/2);
  DcpExecutor executor;  // Shared across all "layers" (here: one attention op).

  Rng rng(1);
  for (int iteration = 0; iteration < 3; ++iteration) {
    PlannedIteration it = loader.Next();
    std::printf("iteration %d: %d sequences, %lld tokens, comm %.2f MiB "
                "(%.2f MiB inter-node), planned in %.2f ms\n",
                iteration, it.batch.NumSequences(),
                static_cast<long long>(it.batch.TotalTokens()),
                static_cast<double>(it.plan().stats.total_comm_bytes) / (1 << 20),
                static_cast<double>(it.plan().stats.inter_node_comm_bytes) / (1 << 20),
                it.plan().stats.planning_seconds * 1e3);

    executor.Prepare(it.handle);

    // Random Q/K/V per sequence; in a real model these come from the QKV projection.
    std::vector<SeqTensors> inputs;
    for (int64_t len : it.batch.seqlens) {
      inputs.push_back(SeqTensors::Random(4, 2, len, engine_options.planner.head_dim, rng));
    }
    std::vector<Tensor> outputs = DcpAttention::Forward(executor, inputs);

    // Verify against the exact single-device reference.
    float worst = 0.0f;
    for (size_t s = 0; s < inputs.size(); ++s) {
      Tensor reference = ReferenceAttentionForward(inputs[s], it.masks()[s]);
      worst = std::max(worst, Tensor::MaxAbsDiff(outputs[s], reference));
    }
    std::printf("  max |DCP - reference| = %.2e  %s\n", worst,
                worst < 1e-4f ? "(OK)" : "(MISMATCH!)");
  }

  const PlanCacheStats stats = engine->cache_stats();
  std::printf("\nplan cache: %lld hits, %lld misses, %lld cached plans; executor reused "
              "buffers on %lld of %lld prepares\n",
              static_cast<long long>(stats.hits), static_cast<long long>(stats.misses),
              static_cast<long long>(stats.entries),
              static_cast<long long>(executor.buffer_reuse_count()),
              static_cast<long long>(executor.prepare_count()));
  std::printf("Done. See examples/rlhf_shared_question.cpp for sparse masks and\n"
              "examples/cluster_simulation.cpp for the timing simulator.\n");
  return 0;
}
