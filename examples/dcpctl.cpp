// dcpctl — command-line front end to the DCP session engine, simulator, and planning
// service. Useful for poking at parallelization configurations without writing code:
//
//   dcpctl plan     --seqlens 65536,32768,8192 --mask lambda --nodes 4 --devices 8
//   dcpctl simulate --seqlens 65536,32768      --mask causal --block 2048
//   dcpctl tune     --seqlens 40960,24576      --mask shared_question
//   dcpctl plan     --seqlens 65536,32768 --store /var/dcp/plans   # warm-start cache
//   dcpctl cache stats  --store /var/dcp/plans
//   dcpctl cache export --store /var/dcp/plans --out plans.bundle
//   dcpctl cache import --store /var/dcp/plans --in  plans.bundle
//   dcpctl serve  --listen tcp:0.0.0.0:7070 --nodes 4 --devices 8 --tenant prod
//   dcpctl serve  --listen tcp:0.0.0.0:7071 --peer tcp:10.0.0.7:7070 --quota 32
//   dcpctl serve  --listen tcp:0.0.0.0:7070 --chaos 42        # fault-injection drill
//   dcpctl remote plan  --connect tcp:10.0.0.7:7070 --tenant prod --seqlens 65536,32768
//   dcpctl remote plan  --replica tcp:10.0.0.7:7070 --replica tcp:10.0.0.8:7070
//                       --tenant prod --seqlens 65536,32768   # failover + hedging
//   dcpctl remote stats --connect tcp:10.0.0.7:7070
//
// `plan` prints the plan summary, per-device stats, and the engine's plan-cache
// counters; `simulate` prices fw+bw and prints the decomposition; `tune` runs the
// paper's block-size search through Engine::AutoTune; `cache` inspects and ships the
// persistent plan store (export/import move plan records between machines as a single
// bundle file — corrupt records are counted and skipped, never fatal). `serve` runs a
// multi-tenant dcp::PlanServer until SIGINT/SIGTERM — each `--tenant NAME` registers a
// tenant with the cluster/planner/store flags in effect at that point on the command
// line (no `--tenant` serves a single tenant named "default"); `remote plan|stats`
// talk to a running server through dcp::PlanClient. Malformed numeric flags and
// planner-rejected inputs exit with code 2 and a usage message instead of aborting.
#include <csignal>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "core/plan_store.h"
#include "masks/mask.h"
#include "runtime/plan_validate.h"
#include "runtime/sim_engine.h"
#include "service/fault_injection.h"
#include "service/plan_client.h"
#include "service/plan_server.h"
#include "service/replica_set.h"
#include "service/tenant_registry.h"
#include "service/transport.h"

using namespace dcp;

namespace {

constexpr const char kUsage[] =
    "usage: dcpctl plan|simulate|tune [--seqlens a,b,c] "
    "[--mask causal|lambda|blockwise|shared_question] "
    "[--nodes N] [--devices D] [--block B] [--store DIR] [--verbose]\n"
    "       dcpctl cache stats|export|import --store DIR [--out FILE] [--in FILE]\n"
    "       dcpctl serve --listen tcp:HOST:PORT|unix:PATH [--workers N] [--queue N]\n"
    "                    [--io-threads N] [--backlog N] [--peer ADDR]... [--gossip-ms N]\n"
    "                    [--quota N] [--chaos [SEED]]\n"
    "                    [cluster/planner flags] [--tenant NAME]...   (flags before\n"
    "                    each --tenant configure that tenant; none = one 'default')\n"
    "       dcpctl remote plan|stats --connect tcp:HOST:PORT|unix:PATH [--tenant NAME]\n"
    "                    [--seqlens a,b,c] [--mask M] [--block B]\n"
    "       dcpctl remote plan --replica ADDR [--replica ADDR]... [--hedge-ms N]\n"
    "                    [--timeout-ms N] [--tenant NAME] [--seqlens a,b,c] [--mask M]\n"
    "       dcpctl remote metrics --connect ADDR [--prefix NAME] [--watch [--watch-ms N]]\n"
    "       dcpctl serve ... [--metrics-dump-ms N]   (periodic Prometheus dump to stderr)\n";

[[noreturn]] void UsageError(const std::string& detail) {
  std::fprintf(stderr, "dcpctl: %s\n%s", detail.c_str(), kUsage);
  std::exit(2);
}

// Strict base-10 parse of a whole string; rejects empty, trailing junk, and overflow.
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::vector<int64_t> ParseSeqlens(const std::string& csv) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const std::string item = csv.substr(pos, comma - pos);
    int64_t value = 0;
    if (!ParseInt64(item, &value)) {
      UsageError("--seqlens expects a comma-separated list of integers, got '" + item +
                 "' in '" + csv + "'");
    }
    out.push_back(value);
    pos = comma + 1;
  }
  return out;
}

MaskSpec ParseMask(const std::string& name) {
  if (name == "causal") {
    return MaskSpec::Causal();
  }
  if (name == "lambda") {
    return MaskSpec::Lambda();
  }
  if (name == "causal_blockwise" || name == "blockwise") {
    return MaskSpec::CausalBlockwise();
  }
  if (name == "shared_question" || name == "sharedq") {
    return MaskSpec::SharedQuestion();
  }
  UsageError("unknown mask '" + name + "' (causal|lambda|blockwise|shared_question)");
}

struct Args {
  std::string command;
  std::string subcommand;  // For `cache` and `remote`.
  std::vector<int64_t> seqlens = {65536, 32768, 16384, 16384};
  MaskSpec mask = MaskSpec::Causal();
  int64_t nodes = 4;
  int64_t devices = 8;
  int64_t block = 2048;
  std::string store;     // Plan-store directory (empty = no persistence).
  std::string out_file;  // cache export target.
  std::string in_file;   // cache import source.
  bool verbose = false;
  // Planning service.
  std::string listen;            // serve: address to bind.
  std::string connect;           // remote: address to dial.
  std::string tenant = "default";  // remote: tenant to plan under.
  int64_t workers = 2;
  int64_t queue = 64;
  int64_t io_threads = 2;  // serve: event-loop threads multiplexing all connections.
  int64_t backlog = 0;     // serve: listen(2) backlog (0 = SOMAXCONN).
  std::vector<std::string> peers;  // serve: anti-entropy gossip partners.
  int64_t gossip_ms = 0;           // serve: gossip interval (0 = gossip off).
  int64_t quota = 0;               // serve: per-tenant in-flight cap (0 = off).
  bool chaos = false;              // serve: arm the fault-injection harness.
  int64_t chaos_seed = -1;         // serve: explicit seed (-1 = DCP_FAULT_SEED/clock).
  std::vector<std::string> replicas;  // remote plan: fleet addresses for a ReplicaSet.
  int64_t hedge_ms = 0;               // remote plan: hedge delay ceiling (0 = default).
  int64_t timeout_ms = 0;             // remote plan: per-request deadline (0 = default).
  std::string metrics_prefix = "dcp_";  // remote metrics: series name filter.
  bool watch = false;                   // remote metrics: re-scrape until interrupted.
  int64_t watch_ms = 2000;              // remote metrics: scrape interval under --watch.
  int64_t metrics_dump_ms = 0;          // serve: periodic stderr dump (0 = off).
  std::vector<TenantConfig> tenants;  // serve: built from --tenant flags in order.
  // serve: a cluster/planner/store flag appeared after the last --tenant. Those flags
  // would apply to no tenant; silently dropping them would make an operator believe
  // (say) persistence is on when it is not — rejected with usage instead.
  bool tenant_flags_dangling = false;
};

ClusterSpec MakeCluster(const Args& args) {
  ClusterSpec cluster;
  cluster.num_nodes = static_cast<int>(args.nodes);
  cluster.devices_per_node = static_cast<int>(args.devices);
  return cluster;
}

EngineOptions MakeEngineOptions(const Args& args) {
  EngineOptions engine_options;
  engine_options.planner.block_size = args.block;
  engine_options.planner.num_groups = 2;
  engine_options.planner.heads_per_group = 4;
  engine_options.planner.head_dim = 128;
  engine_options.plan_store_path = args.store;
  return engine_options;
}

void CheckClusterBounds(const Args& args) {
  // 4096 x 4096 keeps num_nodes * devices_per_node comfortably inside int.
  if (args.nodes < 1 || args.nodes > 4096 || args.devices < 1 || args.devices > 4096) {
    UsageError("--nodes and --devices must be in [1, 4096]");
  }
}

Args Parse(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    UsageError("missing command");
  }
  args.command = argv[1];
  int first_flag = 2;
  if (args.command == "cache") {
    if (argc < 3 || argv[2][0] == '-') {
      UsageError("cache requires a subcommand (stats|export|import)");
    }
    args.subcommand = argv[2];
    first_flag = 3;
  }
  if (args.command == "remote") {
    if (argc < 3 || argv[2][0] == '-') {
      UsageError("remote requires a subcommand (plan|stats|metrics)");
    }
    args.subcommand = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        UsageError(std::string("missing value for ") + argv[i]);
      }
      return argv[++i];
    };
    auto next_int = [&](const char* flag) -> int64_t {
      const std::string flag_name = flag;  // `next()` advances i; capture the name first.
      const std::string text = next();
      int64_t value = 0;
      if (!ParseInt64(text, &value)) {
        UsageError(flag_name + " expects an integer, got '" + text + "'");
      }
      return value;
    };
    if (std::strcmp(argv[i], "--seqlens") == 0) {
      args.seqlens = ParseSeqlens(next());
    } else if (std::strcmp(argv[i], "--mask") == 0) {
      args.mask = ParseMask(next());
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      args.nodes = next_int("--nodes");
      args.tenant_flags_dangling = true;
    } else if (std::strcmp(argv[i], "--devices") == 0) {
      args.devices = next_int("--devices");
      args.tenant_flags_dangling = true;
    } else if (std::strcmp(argv[i], "--block") == 0) {
      args.block = next_int("--block");
      args.tenant_flags_dangling = true;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      args.store = next();
      args.tenant_flags_dangling = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out_file = next();
    } else if (std::strcmp(argv[i], "--in") == 0) {
      args.in_file = next();
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      args.listen = next();
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      args.connect = next();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.workers = next_int("--workers");
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      args.queue = next_int("--queue");
    } else if (std::strcmp(argv[i], "--io-threads") == 0) {
      args.io_threads = next_int("--io-threads");
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      args.backlog = next_int("--backlog");
    } else if (std::strcmp(argv[i], "--peer") == 0) {
      args.peers.push_back(next());
    } else if (std::strcmp(argv[i], "--gossip-ms") == 0) {
      args.gossip_ms = next_int("--gossip-ms");
    } else if (std::strcmp(argv[i], "--quota") == 0) {
      args.quota = next_int("--quota");
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      args.chaos = true;
      // Optional positional seed: `--chaos 42`. Without one the seed comes from
      // DCP_FAULT_SEED (or the clock), and is printed for reproduction either way.
      int64_t seed = 0;
      if (i + 1 < argc && ParseInt64(argv[i + 1], &seed)) {
        args.chaos_seed = seed;
        ++i;
      }
    } else if (std::strcmp(argv[i], "--replica") == 0) {
      args.replicas.push_back(next());
    } else if (std::strcmp(argv[i], "--hedge-ms") == 0) {
      args.hedge_ms = next_int("--hedge-ms");
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      args.timeout_ms = next_int("--timeout-ms");
    } else if (std::strcmp(argv[i], "--prefix") == 0) {
      args.metrics_prefix = next();
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      args.watch = true;
    } else if (std::strcmp(argv[i], "--watch-ms") == 0) {
      args.watch_ms = next_int("--watch-ms");
    } else if (std::strcmp(argv[i], "--metrics-dump-ms") == 0) {
      args.metrics_dump_ms = next_int("--metrics-dump-ms");
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      const std::string name = next();
      if (args.command == "serve") {
        // Snapshot the cluster/planner/store flags seen so far into this tenant.
        CheckClusterBounds(args);
        args.tenants.push_back({name, MakeCluster(args), MakeEngineOptions(args)});
        args.tenant_flags_dangling = false;
      } else {
        args.tenant = name;
      }
    } else {
      UsageError(std::string("unknown flag ") + argv[i]);
    }
  }
  return args;
}

void PrintCacheStats(const Engine& engine) {
  const PlanCacheStats stats = engine.cache_stats();
  std::printf("plan cache: %lld hits, %lld misses, %lld evictions, %lld cached plans "
              "(hit rate %.0f%%)\n",
              static_cast<long long>(stats.hits), static_cast<long long>(stats.misses),
              static_cast<long long>(stats.evictions),
              static_cast<long long>(stats.entries), stats.HitRate() * 100.0);
  if (engine.plan_store() != nullptr) {
    std::printf("plan store: %lld disk hits, %lld writes, %lld corrupt skipped (%s)\n",
                static_cast<long long>(stats.store_hits),
                static_cast<long long>(stats.store_writes),
                static_cast<long long>(stats.store_corrupt_skipped),
                engine.plan_store()->directory().c_str());
  }
}

int RunCache(const Args& args) {
  if (args.store.empty()) {
    UsageError("cache commands require --store DIR");
  }
  StatusOr<std::unique_ptr<PlanStore>> store_or = PlanStore::Open(args.store);
  if (!store_or.ok()) {
    std::fprintf(stderr, "dcpctl: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PlanStore> store = std::move(store_or).value();

  if (args.subcommand == "stats") {
    int valid = 0;
    int corrupt = 0;
    int64_t total_tokens = 0;
    for (const PlanSignature& sig : store->Signatures()) {
      StatusOr<BatchPlan> plan = store->Load(sig);
      if (!plan.ok()) {
        std::printf("  %s  CORRUPT: %s\n", sig.ToHex().c_str(),
                    plan.status().ToString().c_str());
        ++corrupt;
        continue;
      }
      ++valid;
      total_tokens += plan.value().layout.TotalTokens();
      if (args.verbose) {
        std::printf("  %s  %d devices, %d seqs, block %lld, %lld tokens\n",
                    sig.ToHex().c_str(), plan.value().num_devices(),
                    plan.value().layout.num_sequences(),
                    static_cast<long long>(plan.value().layout.block_size),
                    static_cast<long long>(plan.value().layout.TotalTokens()));
      }
    }
    std::printf("plan store %s: %d valid records (%lld planned tokens), %d corrupt\n",
                store->directory().c_str(), valid,
                static_cast<long long>(total_tokens), corrupt);
    return corrupt == 0 ? 0 : 1;
  }
  if (args.subcommand == "export") {
    if (args.out_file.empty()) {
      UsageError("cache export requires --out FILE");
    }
    StatusOr<int> n = store->ExportBundle(args.out_file);
    if (!n.ok()) {
      std::fprintf(stderr, "dcpctl: %s\n", n.status().ToString().c_str());
      return 1;
    }
    std::printf("exported %d plan records to %s (%lld corrupt skipped)\n", n.value(),
                args.out_file.c_str(),
                static_cast<long long>(store->stats().corrupt_skipped));
    return 0;
  }
  if (args.subcommand == "import") {
    if (args.in_file.empty()) {
      UsageError("cache import requires --in FILE");
    }
    StatusOr<int> n = store->ImportBundle(args.in_file);
    if (!n.ok()) {
      std::fprintf(stderr, "dcpctl: %s\n", n.status().ToString().c_str());
      return 1;
    }
    std::printf("imported %d plan records into %s (%lld corrupt skipped)\n", n.value(),
                store->directory().c_str(),
                static_cast<long long>(store->stats().corrupt_skipped));
    return 0;
  }
  UsageError("unknown cache subcommand '" + args.subcommand + "'");
}

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

int RunServe(const Args& args) {
  if (args.listen.empty()) {
    UsageError("serve requires --listen tcp:HOST:PORT or unix:PATH");
  }
  StatusOr<ServiceAddress> address = ServiceAddress::Parse(args.listen);
  if (!address.ok()) {
    UsageError(address.status().ToString());
  }
  if (args.workers < 1 || args.queue < 0) {
    UsageError("--workers must be >= 1 and --queue >= 0");
  }
  if (args.io_threads < 1 || args.backlog < 0) {
    UsageError("--io-threads must be >= 1 and --backlog >= 0");
  }

  auto registry = std::make_shared<TenantRegistry>();
  std::vector<TenantConfig> tenants = args.tenants;
  if (tenants.empty()) {
    CheckClusterBounds(args);
    tenants.push_back({"default", MakeCluster(args), MakeEngineOptions(args)});
  } else if (args.tenant_flags_dangling) {
    UsageError("cluster/planner/store flags after the last --tenant apply to no "
               "tenant; place them before the --tenant they configure");
  }
  for (const TenantConfig& tenant : tenants) {
    const Status registered = registry->Register(tenant);
    if (!registered.ok()) {
      UsageError(registered.ToString());
    }
    std::printf("tenant %-16s %d x %d devices, block %lld%s%s\n", tenant.name.c_str(),
                tenant.cluster.num_nodes, tenant.cluster.devices_per_node,
                static_cast<long long>(tenant.options.planner.block_size),
                tenant.options.plan_store_path.empty() ? "" : ", store ",
                tenant.options.plan_store_path.c_str());
  }

  PlanServerOptions server_options;
  server_options.workers = static_cast<int>(args.workers);
  server_options.max_queue = static_cast<int>(args.queue);
  server_options.max_inflight_per_tenant = static_cast<int>(args.quota);
  server_options.io_threads = static_cast<int>(args.io_threads);
  server_options.listen_backlog = static_cast<int>(args.backlog);
  for (const std::string& peer : args.peers) {
    StatusOr<ServiceAddress> parsed = ServiceAddress::Parse(peer);
    if (!parsed.ok()) {
      UsageError("--peer " + peer + ": " + parsed.status().ToString());
    }
    server_options.peers.push_back(parsed.value());
  }
  if (!server_options.peers.empty() && args.gossip_ms <= 0) {
    server_options.gossip_interval_ms = 500;  // Peers without an interval: sane default.
  } else {
    server_options.gossip_interval_ms = static_cast<int>(args.gossip_ms);
  }

  // `--chaos` arms the fault-injection harness on this process: the injector drives
  // both the serve-side fault point and (via the global hook) every transport socket,
  // so an operator can rehearse client failover against a deliberately flaky server.
  std::shared_ptr<FaultInjector> chaos;
  if (args.chaos) {
    const uint64_t seed = args.chaos_seed >= 0
                              ? static_cast<uint64_t>(args.chaos_seed)
                              : FaultSeedFromEnv(0x646370636f73ULL);
    chaos = std::make_shared<FaultInjector>(seed);
    FaultRates wire;
    wire.fail = 0.02;
    wire.tear = 0.02;
    chaos->SetRates(FaultPoint::kSend, wire);
    chaos->SetRates(FaultPoint::kRecv, wire);
    FaultRates serve;
    serve.fail = 0.02;
    serve.delay = 0.05;
    serve.delay_ms = 50;
    chaos->SetRates(FaultPoint::kServe, serve);
    server_options.fault_injector = chaos;
    InstallGlobalFaultInjector(chaos);
    std::printf("chaos: fault injection armed, seed %llu (re-run with --chaos %llu "
                "to reproduce)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed));
  }
  PlanServer server(registry, server_options);
  const Status started = server.Start(address.value());
  if (!started.ok()) {
    std::fprintf(stderr, "dcpctl: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("dcp plan service listening on %s (%lld workers, %d io threads, "
              "queue %lld%s)\n",
              server.bound_address().ToString().c_str(),
              static_cast<long long>(args.workers), server.io_thread_count(),
              static_cast<long long>(args.queue),
              args.quota > 0 ? ", per-tenant quota on" : "");
  for (const ServiceAddress& peer : server_options.peers) {
    std::printf("gossip: replicating plan records with %s every %d ms\n",
                peer.ToString().c_str(), server_options.gossip_interval_ms);
  }

  if (args.metrics_dump_ms > 0) {
    std::printf("metrics: dumping dcp_* series to stderr every %lld ms\n",
                static_cast<long long>(args.metrics_dump_ms));
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  int64_t since_dump_ms = 0;
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (args.metrics_dump_ms > 0 && (since_dump_ms += 100) >= args.metrics_dump_ms) {
      since_dump_ms = 0;
      const std::string text = metrics::Registry::Global().RenderPrometheus("dcp_");
      std::fprintf(stderr, "# --- metrics dump ---\n%s", text.c_str());
    }
  }
  const PlanServerStats stats = server.stats();
  server.Stop();
  InstallGlobalFaultInjector(nullptr);
  std::printf("\nshutting down: %lld connections, %lld requests, %lld plans served, "
              "%lld plan errors, %lld overload rejections, %lld malformed frames\n",
              static_cast<long long>(stats.connections_accepted),
              static_cast<long long>(stats.requests_received),
              static_cast<long long>(stats.plan_ok),
              static_cast<long long>(stats.plan_errors),
              static_cast<long long>(stats.rejected_overload),
              static_cast<long long>(stats.malformed_frames));
  if (stats.shed_quota > 0 || stats.shed_deadline > 0) {
    std::printf("shed: %lld over-quota, %lld past-deadline\n",
                static_cast<long long>(stats.shed_quota),
                static_cast<long long>(stats.shed_deadline));
  }
  if (!server_options.peers.empty()) {
    std::printf("gossip: %lld records shipped, %lld adopted, %lld rejected\n",
                static_cast<long long>(stats.sync_records_shipped),
                static_cast<long long>(stats.sync_records_adopted),
                static_cast<long long>(stats.sync_records_rejected));
  }
  if (chaos != nullptr) {
    std::printf("chaos: %lld fault decisions, %lld injected\n",
                static_cast<long long>(chaos->decisions()),
                static_cast<long long>(chaos->injected()));
  }
  return 0;
}

// `remote plan` over a replica fleet: route through a ReplicaSet (failover + hedging +
// cooldown) instead of a single PlanClient, and print per-replica health afterwards.
int RunRemoteReplicated(const Args& args) {
  std::vector<ServiceAddress> addresses;
  for (const std::string& replica : args.replicas) {
    StatusOr<ServiceAddress> parsed = ServiceAddress::Parse(replica);
    if (!parsed.ok()) {
      UsageError("--replica " + replica + ": " + parsed.status().ToString());
    }
    addresses.push_back(parsed.value());
  }
  ReplicaSetOptions set_options;
  set_options.tenant = args.tenant;
  if (args.timeout_ms > 0) {
    set_options.request_timeout_ms = static_cast<int>(args.timeout_ms);
    set_options.connect_timeout_ms = static_cast<int>(args.timeout_ms);
  }
  if (args.hedge_ms > 0) {
    set_options.hedge_max_delay_ms = static_cast<int>(args.hedge_ms);
  }
  StatusOr<std::unique_ptr<ReplicaSet>> set_or =
      ReplicaSet::Create(addresses, set_options);
  if (!set_or.ok()) {
    std::fprintf(stderr, "dcpctl: %s\n", set_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ReplicaSet> set = std::move(set_or).value();

  StatusOr<PlanHandle> handle =
      set->PlanWithBlockSize(args.seqlens, args.mask, args.block);
  if (!handle.ok()) {
    std::fprintf(stderr, "dcpctl: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  const BatchPlan& plan = handle.value()->plan;
  const PlanValidation validation = ValidatePlan(plan);
  std::printf("%s\n", PlanToString(plan, args.verbose ? 64 : 4).c_str());
  std::printf("validation: %s\n", validation.Summary().c_str());
  const ReplicaSetStats stats = set->stats();
  std::printf("fleet: %lld rpcs, %lld failovers, %lld hedges (%lld wins, %lld waste) "
              "for tenant %s, signature %s\n",
              static_cast<long long>(stats.rpcs_sent),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.hedges_sent),
              static_cast<long long>(stats.hedge_wins),
              static_cast<long long>(stats.hedge_waste), args.tenant.c_str(),
              handle.value()->signature.ToHex().c_str());
  for (size_t i = 0; i < set->replica_count(); ++i) {
    const ReplicaHealth health = set->health(i);
    std::printf("replica %-24s %s, %lld rpcs, %lld failures, "
                "p50/p95/p99 %lld/%lld/%lld ms (%lld samples), hedge delay %lld ms\n",
                health.address.ToString().c_str(),
                health.available ? "available" : "cooling down",
                static_cast<long long>(health.rpcs),
                static_cast<long long>(health.failures),
                static_cast<long long>(health.p50_ms),
                static_cast<long long>(health.p95_ms),
                static_cast<long long>(health.p99_ms),
                static_cast<long long>(health.latency_samples),
                static_cast<long long>(health.p99_estimate_ms));
  }
  return validation.ok ? 0 : 1;
}

// `remote metrics`: scrape the server's registry as Prometheus text, once or (with
// --watch) repeatedly until interrupted.
int RunRemoteMetrics(PlanClient& client, const Args& args) {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  do {
    StatusOr<PlanServiceMetricsResponse> metrics =
        client.ServerMetrics(args.metrics_prefix);
    if (!metrics.ok()) {
      std::fprintf(stderr, "dcpctl: %s\n", metrics.status().ToString().c_str());
      return 1;
    }
    if (args.watch) {
      std::printf("# --- scrape of %s (prefix '%s') ---\n", args.connect.c_str(),
                  args.metrics_prefix.c_str());
    }
    std::fputs(metrics.value().text.c_str(), stdout);
    std::fflush(stdout);
    if (args.watch && g_stop_requested == 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<int64_t>(100, args.watch_ms)));
    }
  } while (args.watch && g_stop_requested == 0);
  return 0;
}

int RunRemote(const Args& args) {
  if (args.subcommand == "plan" && !args.replicas.empty()) {
    return RunRemoteReplicated(args);
  }
  if (!args.replicas.empty()) {
    UsageError("--replica only applies to `remote plan`; use --connect for stats");
  }
  if (args.connect.empty()) {
    UsageError("remote commands require --connect tcp:HOST:PORT or unix:PATH");
  }
  StatusOr<ServiceAddress> address = ServiceAddress::Parse(args.connect);
  if (!address.ok()) {
    UsageError(address.status().ToString());
  }
  PlanClientOptions client_options;
  client_options.tenant = args.tenant;
  StatusOr<std::unique_ptr<PlanClient>> client_or =
      PlanClient::Connect(address.value(), client_options);
  if (!client_or.ok()) {
    std::fprintf(stderr, "dcpctl: %s\n", client_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<PlanClient> client = std::move(client_or).value();

  if (args.subcommand == "plan") {
    StatusOr<PlanHandle> handle =
        client->PlanWithBlockSize(args.seqlens, args.mask, args.block);
    if (!handle.ok()) {
      std::fprintf(stderr, "dcpctl: %s\n", handle.status().ToString().c_str());
      return 1;
    }
    const BatchPlan& plan = handle.value()->plan;
    const PlanValidation validation = ValidatePlan(plan);
    std::printf("%s\n", PlanToString(plan, args.verbose ? 64 : 4).c_str());
    std::printf("validation: %s\n", validation.Summary().c_str());
    std::printf("served from: %s (tenant %s, signature %s)\n",
                PlanServeSourceName(client->last_source()).c_str(),
                args.tenant.c_str(), handle.value()->signature.ToHex().c_str());
    return validation.ok ? 0 : 1;
  }
  if (args.subcommand == "stats") {
    StatusOr<PlanServiceStatsResponse> stats = client->ServerStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "dcpctl: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (stats.value().code != StatusCode::kOk) {
      std::fprintf(stderr, "dcpctl: server: %s: %s\n",
                   StatusCodeName(stats.value().code),
                   stats.value().message.c_str());
      return 1;
    }
    std::printf("service: %lld connections, %lld requests, %lld responses, "
                "%lld overload rejections, %lld malformed frames\n",
                static_cast<long long>(stats.value().connections_accepted),
                static_cast<long long>(stats.value().requests_received),
                static_cast<long long>(stats.value().responses_sent),
                static_cast<long long>(stats.value().rejected_overload),
                static_cast<long long>(stats.value().malformed_frames));
    for (const PlanServiceTenantStats& tenant : stats.value().tenants) {
      std::printf("tenant %-16s %lld requests (%lld errors), cache %lld hits / "
                  "%lld misses / %lld entries, store %lld hits / %lld writes / "
                  "%lld corrupt\n",
                  tenant.tenant.c_str(), static_cast<long long>(tenant.requests),
                  static_cast<long long>(tenant.plan_errors),
                  static_cast<long long>(tenant.cache_hits),
                  static_cast<long long>(tenant.cache_misses),
                  static_cast<long long>(tenant.cache_entries),
                  static_cast<long long>(tenant.store_hits),
                  static_cast<long long>(tenant.store_writes),
                  static_cast<long long>(tenant.store_corrupt_skipped));
    }
    return 0;
  }
  if (args.subcommand == "metrics") {
    return RunRemoteMetrics(*client, args);
  }
  UsageError("unknown remote subcommand '" + args.subcommand + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.command == "cache") {
    return RunCache(args);
  }
  if (args.command == "serve") {
    return RunServe(args);
  }
  if (args.command == "remote") {
    return RunRemote(args);
  }
  CheckClusterBounds(args);
  const ClusterSpec cluster = MakeCluster(args);
  const EngineOptions engine_options = MakeEngineOptions(args);

  // Reject bad shapes before the engine spins anything up, with exit code 2 and usage.
  const Status valid =
      ValidatePlanRequest(args.seqlens, args.mask, cluster, engine_options.planner);
  if (!valid.ok()) {
    UsageError(valid.ToString());
  }
  Engine engine(cluster, engine_options);

  if (args.command == "plan") {
    const PlanHandle handle = engine.Plan(args.seqlens, args.mask).value();
    const BatchPlan& plan = handle->plan;
    const PlanValidation validation = ValidatePlan(plan);
    std::printf("%s\n", PlanToString(plan, args.verbose ? 64 : 4).c_str());
    std::printf("validation: %s\n", validation.Summary().c_str());
    std::printf("planning: %.1f ms, comm %.1f MiB (%.1f inter-node), "
                "owned-bytes balance %.2f\n",
                plan.stats.planning_seconds * 1e3,
                static_cast<double>(plan.stats.total_comm_bytes) / (1 << 20),
                static_cast<double>(plan.stats.inter_node_comm_bytes) / (1 << 20),
                static_cast<double>(plan.stats.max_device_owned_bytes) /
                    std::max<Bytes>(1, plan.stats.min_device_owned_bytes));
    PrintCacheStats(engine);
    return validation.ok ? 0 : 1;
  }
  if (args.command == "simulate") {
    const PlanHandle handle = engine.Plan(args.seqlens, args.mask).value();
    SimEngine sim{CostModel(cluster)};
    const SimResult fw = sim.Simulate(handle->plan, false);
    const SimResult bw = sim.Simulate(handle->plan, true);
    std::printf("attention fw %.3f ms, bw %.3f ms\n", fw.makespan * 1e3,
                bw.makespan * 1e3);
    std::printf("fw: compute %.3f ms, exposed comm %.3f ms, overlapped %.3f ms\n",
                fw.MeanAttentionCompute() * 1e3, fw.MeanExposedComm() * 1e3,
                fw.MeanOverlappedComm() * 1e3);
    return 0;
  }
  if (args.command == "tune") {
    const AutoTuneResult result = engine.AutoTune(args.seqlens, args.mask).value();
    for (const auto& [block, seconds] : result.candidates) {
      std::printf("block %5lld: fw+bw %.3f ms%s\n", static_cast<long long>(block),
                  seconds * 1e3, block == result.best_block_size ? "  <= best" : "");
    }
    if (result.tuned_from_cache) {
      std::printf("block %5lld: recorded winner (tune cache)\n",
                  static_cast<long long>(result.best_block_size));
    }
    return 0;
  }
  UsageError("unknown command '" + args.command + "'");
}
