// dcpctl — command-line front end to the DCP planner and simulator. Useful for poking at
// parallelization configurations without writing code:
//
//   dcpctl plan     --seqlens 65536,32768,8192 --mask lambda --nodes 4 --devices 8
//   dcpctl simulate --seqlens 65536,32768      --mask causal --block 2048
//   dcpctl tune     --seqlens 40960,24576      --mask shared_question
//
// `plan` prints the plan summary and per-device stats; `simulate` prices fw+bw and prints
// the decomposition; `tune` runs the paper's block-size search.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/planner.h"
#include "masks/mask.h"
#include "runtime/plan_validate.h"
#include "runtime/sim_engine.h"

using namespace dcp;

namespace {

std::vector<int64_t> ParseSeqlens(const std::string& csv) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    out.push_back(std::stoll(csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

MaskSpec ParseMask(const std::string& name) {
  if (name == "causal") {
    return MaskSpec::Causal();
  }
  if (name == "lambda") {
    return MaskSpec::Lambda();
  }
  if (name == "causal_blockwise" || name == "blockwise") {
    return MaskSpec::CausalBlockwise();
  }
  if (name == "shared_question" || name == "sharedq") {
    return MaskSpec::SharedQuestion();
  }
  std::fprintf(stderr, "unknown mask '%s' (causal|lambda|blockwise|shared_question)\n",
               name.c_str());
  std::exit(2);
}

struct Args {
  std::string command;
  std::vector<int64_t> seqlens = {65536, 32768, 16384, 16384};
  MaskSpec mask = MaskSpec::Causal();
  int nodes = 4;
  int devices = 8;
  int64_t block = 2048;
  bool verbose = false;
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    std::fprintf(stderr, "usage: dcpctl plan|simulate|tune [--seqlens a,b,c] "
                         "[--mask causal|lambda|blockwise|shared_question] "
                         "[--nodes N] [--devices D] [--block B] [--verbose]\n");
    std::exit(2);
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seqlens") == 0) {
      args.seqlens = ParseSeqlens(next());
    } else if (std::strcmp(argv[i], "--mask") == 0) {
      args.mask = ParseMask(next());
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      args.nodes = std::stoi(next());
    } else if (std::strcmp(argv[i], "--devices") == 0) {
      args.devices = std::stoi(next());
    } else if (std::strcmp(argv[i], "--block") == 0) {
      args.block = std::stoll(next());
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  ClusterSpec cluster;
  cluster.num_nodes = args.nodes;
  cluster.devices_per_node = args.devices;
  PlannerOptions options;
  options.block_size = args.block;
  options.num_groups = 2;
  options.heads_per_group = 4;
  options.head_dim = 128;
  std::vector<SequenceMask> masks = BuildBatchMasks(args.mask, args.seqlens);

  if (args.command == "plan") {
    BatchPlan plan = PlanBatch(args.seqlens, masks, cluster, options);
    const PlanValidation validation = ValidatePlan(plan);
    std::printf("%s\n", PlanToString(plan, args.verbose ? 64 : 4).c_str());
    std::printf("validation: %s\n", validation.Summary().c_str());
    std::printf("planning: %.1f ms, comm %.1f MiB (%.1f inter-node), "
                "owned-bytes balance %.2f\n",
                plan.stats.planning_seconds * 1e3,
                static_cast<double>(plan.stats.total_comm_bytes) / (1 << 20),
                static_cast<double>(plan.stats.inter_node_comm_bytes) / (1 << 20),
                static_cast<double>(plan.stats.max_device_owned_bytes) /
                    std::max<Bytes>(1, plan.stats.min_device_owned_bytes));
    return validation.ok ? 0 : 1;
  }
  if (args.command == "simulate") {
    BatchPlan plan = PlanBatch(args.seqlens, masks, cluster, options);
    SimEngine sim{CostModel(cluster)};
    const SimResult fw = sim.Simulate(plan, false);
    const SimResult bw = sim.Simulate(plan, true);
    std::printf("attention fw %.3f ms, bw %.3f ms\n", fw.makespan * 1e3,
                bw.makespan * 1e3);
    std::printf("fw: compute %.3f ms, exposed comm %.3f ms, overlapped %.3f ms\n",
                fw.MeanAttentionCompute() * 1e3, fw.MeanExposedComm() * 1e3,
                fw.MeanOverlappedComm() * 1e3);
    return 0;
  }
  if (args.command == "tune") {
    const BlockSizeSearchResult result =
        SearchBlockSize(args.seqlens, masks, cluster, options);
    for (const auto& [block, seconds] : result.candidates) {
      std::printf("block %5lld: fw+bw %.3f ms%s\n", static_cast<long long>(block),
                  seconds * 1e3, block == result.best_block_size ? "  <= best" : "");
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", args.command.c_str());
  return 2;
}
