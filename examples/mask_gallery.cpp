// Mask gallery: renders the four attention patterns of the paper's Fig. 6 as ASCII, shows
// how block generation classifies tiles (full / partial / empty), and reports the FLOP
// sparsity each mask buys. A visual companion to masks/ and core/block_gen.
//
//   ./examples/mask_gallery
#include <cstdio>

#include "core/block_gen.h"
#include "masks/mask.h"

using namespace dcp;

namespace {

void RenderMask(const SequenceMask& mask, int64_t step) {
  for (int64_t q = 0; q < mask.length(); q += step) {
    for (int64_t k = 0; k < mask.length(); k += step) {
      std::fputc(mask.Attends(q, k) ? '#' : '.', stdout);
    }
    std::fputc('\n', stdout);
  }
}

void RenderTiles(const SequenceMask& mask, int64_t block) {
  const int64_t len = mask.length();
  for (int64_t qb = 0; qb < len; qb += block) {
    for (int64_t kb = 0; kb < len; kb += block) {
      int64_t pairs = 0;
      const BlockCoverage coverage =
          mask.Classify(qb, std::min(len, qb + block), kb, std::min(len, kb + block),
                        &pairs);
      char c = '.';
      if (coverage == BlockCoverage::kFull) {
        c = 'F';
      } else if (coverage == BlockCoverage::kPartial) {
        c = 'p';
      }
      std::fputc(c, stdout);
    }
    std::fputc('\n', stdout);
  }
}

}  // namespace

int main() {
  const int64_t len = 512;
  const int64_t block = 64;
  for (MaskKind kind : AllMaskKinds()) {
    MaskSpec spec = MaskSpec::ForKind(kind);
    spec.sink_tokens = 32;
    spec.window_tokens = 128;
    spec.icl_block_tokens = 64;
    const SequenceMask mask = SequenceMask::Build(spec, MakeSequenceInfo(spec, len));
    std::printf("=== %s (length %lld, sparsity vs causal %.2f) ===\n",
                MaskKindName(kind).c_str(), static_cast<long long>(len),
                mask.SparsityVsCausal());
    std::printf("token-level (every %lldth token):\n", static_cast<long long>(len / 32));
    RenderMask(mask, len / 32);
    std::printf("tile classification at block size %lld (F=full, p=partial, .=skipped):\n",
                static_cast<long long>(block));
    RenderTiles(mask, block);

    BatchLayout layout;
    layout.seqlens = {len};
    layout.block_size = block;
    layout.num_groups = 1;
    layout.heads_per_group = 1;
    layout.head_dim = 64;
    BlockGraph graph = GenerateBlocks(layout, {mask});
    const int64_t dense_tiles = (len / block) * (len / block + 1) / 2;
    std::printf("computation blocks generated: %d of %lld causal tiles\n\n",
                graph.num_comp_blocks(), static_cast<long long>(dense_tiles));
  }
  return 0;
}
