// End-to-end training simulation: prices one iteration of the 8B GPT on the 64-GPU
// testbed (8 nodes, TP=4, 16-way context parallelism) for DCP and the MLM baseline,
// across all four attention masks, and prints the per-category decomposition — a
// self-contained tour of the discrete-event simulator and iteration model.
//
//   ./examples/cluster_simulation
#include <cstdio>

#include "baselines/static_planner.h"
#include "common/table.h"
#include "core/engine.h"
#include "data/batching.h"
#include "e2e/iteration_model.h"

using namespace dcp;

int main() {
  const ClusterSpec cluster = ClusterSpec::EndToEndTestbed();
  const ModelSpec model = ModelSpec::Gpt8B();
  EngineOptions engine_options;
  engine_options.planner.block_size = 2048;
  engine_options.planner.num_groups = 2;
  engine_options.planner.heads_per_group = 4;
  engine_options.planner.head_dim = 128;
  const PlannerOptions& options = engine_options.planner;
  Engine engine(cluster, engine_options);

  std::printf("Cluster: %d nodes x %d CP ranks (TP groups of 4 GPUs), NIC %.0f GB/s per "
              "node, NVSwitch %.0f GB/s\n",
              cluster.num_nodes, cluster.devices_per_node, cluster.node_nic_gbps,
              cluster.intra_node_gbps);
  std::printf("Model: GPT %dL, hidden %lld, %d heads / %d KV groups, %.1fB params\n\n",
              model.num_layers, static_cast<long long>(model.hidden), model.num_heads,
              model.num_kv_groups, static_cast<double>(model.TotalParams()) / 1e9);

  DatasetConfig data;
  data.kind = DatasetKind::kLongAlign;
  data.max_seq_len = 65536;
  BatchingConfig batching;
  batching.token_budget = 131072;
  BatchStream stream{LengthSampler(data), batching};
  const Batch batch = stream.NextBatch();
  std::printf("Batch: %d sequences, %lld tokens, longest %lld\n\n", batch.NumSequences(),
              static_cast<long long>(batch.TotalTokens()),
              static_cast<long long>(batch.MaxSeqLen()));

  Table table({"Mask", "System", "Attention (ms)", "Exposed comm (ms)", "Others (ms)",
               "Iteration (s)", "Speedup"});
  for (MaskKind kind : AllMaskKinds()) {
    const MaskSpec mask = MaskSpec::ForKind(kind);
    const PlanHandle dcp_plan = engine.Plan(batch.seqlens, mask).value();
    BaselineResult mlm = PlanBaseline(BaselineKind::kTransformerEngine, batch.seqlens,
                                      mask, cluster, options);
    const IterationBreakdown dcp = ModelIteration(model, cluster, dcp_plan->plan);
    const IterationBreakdown base = ModelIteration(model, cluster, mlm.plan);
    table.AddRow({MaskKindName(kind), "MLM",
                  Table::Num((base.attn_compute + base.attn_overhead) * 1e3, 0),
                  Table::Num(base.attn_exposed_comm * 1e3, 0),
                  Table::Num(base.Others() * 1e3, 0), Table::Num(base.Total(), 3), ""});
    table.AddRow({MaskKindName(kind), "DCP",
                  Table::Num((dcp.attn_compute + dcp.attn_overhead) * 1e3, 0),
                  Table::Num(dcp.attn_exposed_comm * 1e3, 0),
                  Table::Num(dcp.Others() * 1e3, 0), Table::Num(dcp.Total(), 3),
                  Table::Num(base.Total() / dcp.Total()) + "x"});
  }
  table.Print();
  return 0;
}
